// Protocol-mode mobile-user layer: location updates over the wire, proxy
// handoff on region-boundary crossings, locate requests, replication of the
// location store to the secondary owner, and presence notifications driven
// by the subscription workload generator.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/user_fleet.h"
#include "workload/query_gen.h"

namespace geogrid::core {
namespace {

class ProtocolMobilityTest : public ::testing::Test {
 protected:
  ProtocolMobilityTest() : cluster_(make_options()) {
    for (int i = 0; i < 50; ++i) cluster_.spawn();
    EXPECT_TRUE(cluster_.run_until_joined());
    cluster_.run_for(20);  // let neighbor gossip settle
  }

  static Cluster::Options make_options() {
    Cluster::Options opt;
    opt.node.mode = GridMode::kDualPeer;
    opt.seed = 42;
    return opt;
  }

  /// Every stored copy of `user` in regions covering `p`, across all nodes.
  std::size_t copies_at(UserId user, const Point& p) {
    std::size_t copies = 0;
    for (const auto& node : cluster_.nodes()) {
      if (node->departed()) continue;
      for (const auto& [rid, region] : node->owned()) {
        if (!(region.rect.covers(p) || region.rect.covers_inclusive(p))) {
          continue;
        }
        if (region.users.locate(user).has_value()) ++copies;
      }
    }
    return copies;
  }

  Cluster cluster_;
};

TEST_F(ProtocolMobilityTest, UpdateIsIngestedAndAcked) {
  auto& proxy = *cluster_.nodes().front();
  std::vector<net::LocationUpdateAck> acks;
  proxy.on_location_ack = [&](const net::LocationUpdateAck& a) {
    acks.push_back(a);
  };
  proxy.submit_location_update(UserId{7}, Point{25.0, 25.0}, 1);
  cluster_.run_for(10);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].user, UserId{7});
  EXPECT_EQ(acks[0].seq, 1u);
  EXPECT_EQ(proxy.counters().location_acks_received, 1u);

  GeoGridNode* owner = cluster_.primary_covering({25.0, 25.0});
  ASSERT_NE(owner, nullptr);
  EXPECT_GT(owner->counters().location_updates_ingested, 0u);
}

TEST_F(ProtocolMobilityTest, BoundaryCrossingIsLocatableAndEvictsOldOwner) {
  const UserId user{99};
  const Point before{10.0, 10.0};
  const Point after{50.0, 50.0};
  auto& proxy = *cluster_.nodes().front();
  auto& seeker = *cluster_.nodes()[7];

  std::vector<net::LocateReply> replies;
  seeker.on_locate = [&](const net::LocateReply& r) { replies.push_back(r); };

  proxy.submit_location_update(user, before, 1);
  cluster_.run_for(10);
  const std::uint64_t rid1 = seeker.locate_user(user, before);
  cluster_.run_for(10);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].request_id, rid1);
  ASSERT_TRUE(replies[0].found);
  EXPECT_EQ(replies[0].location, before);

  // The user drives across the plane: the update routes to the new owning
  // region and a UserHandoff evicts the record from the old one.
  proxy.submit_location_update(user, after, 2, before);
  cluster_.run_for(10);
  EXPECT_EQ(copies_at(user, before), 0u) << "old owner kept a stale record";
  ASSERT_GE(copies_at(user, after), 1u);

  replies.clear();
  auto& other_seeker = *cluster_.nodes()[3];
  other_seeker.on_locate = [&](const net::LocateReply& r) {
    replies.push_back(r);
  };
  other_seeker.locate_user(user, after);
  cluster_.run_for(10);
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_TRUE(replies[0].found);
  EXPECT_EQ(replies[0].location, after);
  EXPECT_EQ(replies[0].seq, 2u);

  // Crash the primary owner: the secondary's replicated store must keep the
  // user locatable.
  GeoGridNode* owner = cluster_.primary_covering(after);
  ASSERT_NE(owner, nullptr);
  const OwnedRegion* owning_region = nullptr;
  for (const auto& [rid, region] : owner->owned()) {
    if (region.is_primary() &&
        (region.rect.covers(after) || region.rect.covers_inclusive(after))) {
      owning_region = &region;
    }
  }
  ASSERT_NE(owning_region, nullptr);
  if (!owning_region->full()) {
    GTEST_SKIP() << "covering region is half-full in this topology";
  }
  owner->crash();
  cluster_.run_for(60);  // fail-over windows

  replies.clear();
  GeoGridNode* survivor = nullptr;
  for (auto& node : cluster_.nodes()) {
    if (!node->departed() && node->joined() && node.get() != owner) {
      survivor = node.get();
      break;
    }
  }
  ASSERT_NE(survivor, nullptr);
  survivor->on_locate = [&](const net::LocateReply& r) {
    replies.push_back(r);
  };
  survivor->locate_user(user, after);
  cluster_.run_for(10);
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_TRUE(replies[0].found) << "fail-over lost the user record";
  EXPECT_EQ(replies[0].location, after);
  EXPECT_EQ(replies[0].seq, 2u);
}

TEST_F(ProtocolMobilityTest, GeneratedPresenceSubscriptionNotifiesOnEntry) {
  // Satellite path: workload::QueryGenerator::next_subscription -> Subscribe
  // -> user movement -> Notify, with duplicate suppression while the user
  // wanders inside the subscribed area.
  Rng field_rng(17);
  workload::HotSpotField field({}, field_rng);
  workload::QueryGenerator gen(
      field, workload::QueryGenerator::Options::presence_tracking(), Rng(23));

  auto& subscriber = *cluster_.nodes()[1];
  const net::Subscribe sub = gen.next_subscription(subscriber.info(), 600.0);
  ASSERT_EQ(sub.filter, "presence");

  std::vector<net::Notify> notifies;
  subscriber.on_notify = [&](const net::Notify& n) { notifies.push_back(n); };
  const std::uint64_t sid =
      subscriber.subscribe(sub.area, sub.filter, sub.duration);
  cluster_.run_for(5);

  const Point inside = sub.area.center();
  const Point wander{inside.x + sub.area.width / 8.0,
                     inside.y + sub.area.height / 8.0};
  const Point outside{sub.area.x > 32.0 ? 1.0 : 63.0,
                      sub.area.y > 32.0 ? 1.0 : 63.0};
  const UserId user{5};
  auto& proxy = *cluster_.nodes().front();

  proxy.submit_location_update(user, outside, 1);
  cluster_.run_for(5);
  EXPECT_EQ(notifies.size(), 0u);

  proxy.submit_location_update(user, inside, 2, outside);  // enters the area
  cluster_.run_for(5);
  ASSERT_EQ(notifies.size(), 1u);
  EXPECT_EQ(notifies[0].sub_id, sid);
  EXPECT_EQ(notifies[0].topic, "presence");

  proxy.submit_location_update(user, wander, 3, inside);  // stays inside
  cluster_.run_for(5);
  EXPECT_EQ(notifies.size(), 1u) << "wandering inside the area re-notified";

  proxy.submit_location_update(user, outside, 4, wander);  // leaves
  cluster_.run_for(5);
  EXPECT_EQ(notifies.size(), 1u);

  proxy.submit_location_update(user, inside, 5, outside);  // re-enters
  cluster_.run_for(5);
  EXPECT_EQ(notifies.size(), 2u) << "re-entry should notify again";
}

TEST_F(ProtocolMobilityTest, FleetKeepsUsersLocatable) {
  mobility::UserPopulation::Options opt;
  opt.max_pause = 5.0;
  UserFleet fleet(cluster_,
                  mobility::UserPopulation(20, opt, nullptr, Rng(31)));
  for (int round = 0; round < 10; ++round) {
    fleet.tick(2.0);
    cluster_.run_for(2.0);
  }
  cluster_.run_for(10.0);  // drain in-flight updates

  std::uint64_t acks = 0;
  for (const auto& node : cluster_.nodes()) {
    acks += node->counters().location_acks_received;
  }
  EXPECT_GT(acks, 0u);

  auto& seeker = *cluster_.nodes()[9];
  std::vector<net::LocateReply> replies;
  seeker.on_locate = [&](const net::LocateReply& r) { replies.push_back(r); };
  for (std::size_t i = 0; i < fleet.population().users().size(); ++i) {
    const auto reported = fleet.last_reported(i);
    ASSERT_TRUE(reported.has_value());
    seeker.locate_user(fleet.population().users()[i].id, *reported);
  }
  cluster_.run_for(15.0);
  ASSERT_EQ(replies.size(), fleet.population().users().size());
  for (const auto& r : replies) {
    EXPECT_TRUE(r.found) << "user " << r.user.value << " lost";
  }
}

// --- Scripted four-node topology: replication and expiry on fail-over -----

Cluster::Options scripted_options(std::uint64_t seed) {
  Cluster::Options opt;
  opt.node.mode = GridMode::kDualPeer;
  opt.seed = seed;
  return opt;
}

TEST(ProtocolMobilityFailover, ReplicatedStoreServesAfterPrimaryCrash) {
  Cluster cluster(scripted_options(12));
  auto& a = cluster.spawn_at({10, 10}, 100.0);
  cluster.spawn_at({50, 50}, 1.0);
  auto& c = cluster.spawn_at({30, 30}, 10.0);
  auto& d = cluster.spawn_at({12, 12}, 20.0);
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(10);

  const UserId user{1};
  c.submit_location_update(user, Point{10.0, 10.0}, 1);
  cluster.run_for(15);  // replication happens on peer-sync ticks

  GeoGridNode* primary = cluster.primary_covering({10.0, 10.0});
  ASSERT_NE(primary, nullptr);
  bool replicated = false;
  for (const auto& [rid, region] : primary->owned()) {
    if (region.is_primary() && region.full() &&
        region.users.locate(user).has_value()) {
      replicated = true;
    }
  }
  ASSERT_TRUE(replicated) << "user region never gained a replica";
  primary->crash();
  cluster.run_for(60);

  GeoGridNode* seeker = (&a == primary) ? &d : &a;
  if (!seeker->joined() || seeker->departed()) seeker = &c;
  std::vector<net::LocateReply> replies;
  seeker->on_locate = [&](const net::LocateReply& r) { replies.push_back(r); };
  seeker->locate_user(user, Point{10.0, 10.0});
  cluster.run_for(10);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].found) << "fail-over lost the replicated user";
}

TEST(ProtocolMobilityFailover, FailedOverSecondaryDropsExpiredSubscriptions) {
  Cluster cluster(scripted_options(12));
  auto& a = cluster.spawn_at({10, 10}, 100.0);
  cluster.spawn_at({50, 50}, 1.0);
  auto& c = cluster.spawn_at({30, 30}, 10.0);
  auto& d = cluster.spawn_at({12, 12}, 20.0);
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(10);

  int notifies = 0;
  c.on_notify = [&](const net::Notify&) { ++notifies; };
  c.subscribe(Rect{8, 8, 4, 4}, std::string(kPresenceTopic), 5.0);
  cluster.run_for(2);  // replicated within a couple of sync ticks

  // After expiry, the cleanup must run on every seat — secondaries
  // included — so no replica still holds the lapsed subscription.
  cluster.run_for(20);
  for (const auto& node : cluster.nodes()) {
    for (const auto& [rid, region] : node->owned()) {
      EXPECT_TRUE(region.subscriptions.empty())
          << "node " << node->info().id << " region " << rid
          << " kept an expired subscription (role "
          << (region.is_primary() ? "primary" : "secondary") << ")";
    }
  }

  GeoGridNode* primary = cluster.primary_covering({10.0, 10.0});
  ASSERT_NE(primary, nullptr);
  primary->crash();
  cluster.run_for(60);

  // A user entering the subscribed rectangle must not fire the lapsed
  // subscription on the failed-over owner.
  GeoGridNode* proxy = (&a == primary) ? &d : &a;
  if (!proxy->joined() || proxy->departed()) proxy = &c;
  proxy->submit_location_update(UserId{2}, Point{10.0, 10.0}, 1);
  cluster.run_for(10);
  EXPECT_EQ(notifies, 0);
}

}  // namespace
}  // namespace geogrid::core
