// Protocol-mode application layer: queries, dissemination, pub-sub.
#include <gtest/gtest.h>

#include "core/cluster.h"

namespace geogrid::core {
namespace {

class ProtocolQueryTest : public ::testing::Test {
 protected:
  ProtocolQueryTest() : cluster_(make_options()) {
    for (int i = 0; i < 50; ++i) cluster_.spawn();
    EXPECT_TRUE(cluster_.run_until_joined());
    cluster_.run_for(20);  // let neighbor gossip settle
  }

  static Cluster::Options make_options() {
    Cluster::Options opt;
    opt.node.mode = GridMode::kDualPeer;
    opt.seed = 42;
    return opt;
  }

  Cluster cluster_;
};

TEST_F(ProtocolQueryTest, QueryReachesCoveringRegionAndReturnsResult) {
  auto& issuer = *cluster_.nodes().front();
  std::vector<net::QueryResult> results;
  issuer.on_result = [&](const net::QueryResult& r) { results.push_back(r); };

  const std::uint64_t qid = issuer.submit_query(Rect{30, 30, 2, 2}, "gas");
  cluster_.run_for(10);
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) EXPECT_EQ(r.query_id, qid);

  // The executor is the node owning the region covering the query center.
  GeoGridNode* executor = cluster_.primary_covering({31, 31});
  ASSERT_NE(executor, nullptr);
  EXPECT_GT(executor->counters().queries_executed, 0u);
}

TEST_F(ProtocolQueryTest, WideQueryIsDisseminatedToOverlappingRegions) {
  auto& issuer = *cluster_.nodes().front();
  int results = 0;
  issuer.on_result = [&](const net::QueryResult&) { ++results; };
  // A 20x20-mile area overlaps several regions of a 50-node grid.
  issuer.submit_query(Rect{20, 20, 20, 20}, "traffic");
  cluster_.run_for(10);
  EXPECT_GE(results, 2);  // executor plus at least one disseminated copy
}

TEST_F(ProtocolQueryTest, SubscriptionDeliversMatchingPublications) {
  auto& subscriber = *cluster_.nodes()[1];
  std::vector<net::Notify> notifies;
  subscriber.on_notify = [&](const net::Notify& n) { notifies.push_back(n); };

  const std::uint64_t sid =
      subscriber.subscribe(Rect{40, 40, 6, 6}, "parking", 500.0);
  cluster_.run_for(5);
  cluster_.nodes()[2]->publish({43, 43}, "parking", "lot B: 12 spots");
  cluster_.run_for(10);
  ASSERT_EQ(notifies.size(), 1u);
  EXPECT_EQ(notifies[0].sub_id, sid);
  EXPECT_EQ(notifies[0].payload, "lot B: 12 spots");
}

TEST_F(ProtocolQueryTest, TopicFilterSuppressesMismatches) {
  auto& subscriber = *cluster_.nodes()[1];
  int notifies = 0;
  subscriber.on_notify = [&](const net::Notify&) { ++notifies; };
  subscriber.subscribe(Rect{40, 40, 6, 6}, "parking", 500.0);
  cluster_.run_for(5);
  cluster_.nodes()[2]->publish({43, 43}, "traffic", "accident");  // topic
  cluster_.nodes()[2]->publish({20, 20}, "parking", "far away");  // area
  cluster_.run_for(10);
  EXPECT_EQ(notifies, 0);
}

TEST_F(ProtocolQueryTest, SubscriptionsExpire) {
  auto& subscriber = *cluster_.nodes()[1];
  int notifies = 0;
  subscriber.on_notify = [&](const net::Notify&) { ++notifies; };
  subscriber.subscribe(Rect{40, 40, 6, 6}, "parking", 5.0);  // 5 seconds
  cluster_.run_for(30);  // far past expiry
  cluster_.nodes()[2]->publish({43, 43}, "parking", "too late");
  cluster_.run_for(10);
  EXPECT_EQ(notifies, 0);
}

TEST_F(ProtocolQueryTest, SubscriptionsReplicateToSecondary) {
  auto& subscriber = *cluster_.nodes()[1];
  subscriber.subscribe(Rect{40, 40, 6, 6}, "parking", 500.0);
  cluster_.run_for(15);  // covers several peer-sync intervals

  // Find the secondary of the covering region and check its replica.
  GeoGridNode* primary = cluster_.primary_covering({43, 43});
  ASSERT_NE(primary, nullptr);
  const OwnedRegion* primary_region = nullptr;
  for (const auto& [rid, region] : primary->owned()) {
    if (region.is_primary() &&
        (region.rect.covers({43, 43}) ||
         region.rect.covers_inclusive({43, 43}))) {
      primary_region = &region;
    }
  }
  ASSERT_NE(primary_region, nullptr);
  EXPECT_FALSE(primary_region->subscriptions.empty());
  if (!primary_region->peer) {
    GTEST_SKIP() << "covering region is half-full in this topology";
  }
  const NodeId peer_id = primary_region->peer->id;
  for (const auto& node : cluster_.nodes()) {
    if (node->info().id != peer_id) continue;
    const auto it = node->owned().find(primary_region->id);
    ASSERT_NE(it, node->owned().end());
    EXPECT_EQ(it->second.subscriptions.size(),
              primary_region->subscriptions.size());
  }
}

TEST_F(ProtocolQueryTest, PublishWithNoSubscribersIsSilent) {
  int notifies = 0;
  for (auto& node : cluster_.nodes()) {
    node->on_notify = [&](const net::Notify&) { ++notifies; };
  }
  cluster_.nodes()[3]->publish({10, 10}, "gas", "3.50/gal");
  cluster_.run_for(10);
  EXPECT_EQ(notifies, 0);
}

}  // namespace
}  // namespace geogrid::core
