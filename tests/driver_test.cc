// Adaptation driver: rounds and single steps converge the workload.
#include "loadbalance/driver.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "loadbalance/workload_index.h"
#include "metrics/collector.h"

namespace geogrid::loadbalance {
namespace {

core::SimulationOptions sim_options(std::size_t nodes, std::uint64_t seed) {
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeerAdaptive;
  opt.node_count = nodes;
  opt.seed = seed;
  opt.field.cells_x = 128;
  opt.field.cells_y = 128;
  return opt;
}

TEST(Driver, RoundsReduceImbalanceAndConverge) {
  core::GridSimulation sim(sim_options(400, 11));
  const Summary before = sim.workload_summary();
  std::size_t executed_last = 0;
  for (int round = 0; round < 20; ++round) {
    executed_last = sim.driver().run_round().executed;
    ASSERT_TRUE(sim.partition().validate_fast().empty());
    if (executed_last == 0) break;
  }
  const Summary after = sim.workload_summary();
  EXPECT_LT(after.stddev, before.stddev);
  EXPECT_LT(after.max, before.max);
  EXPECT_EQ(executed_last, 0u);  // converged: no trigger fires anymore
  EXPECT_TRUE(sim.partition().validate().empty());
}

TEST(Driver, StepExecutesSingleAdaptation) {
  core::GridSimulation sim(sim_options(300, 13));
  AdaptationDriver& driver = sim.driver();
  const auto plan = driver.step();
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(driver.total().executed, 1u);
  EXPECT_TRUE(sim.partition().validate_fast().empty());
}

TEST(Driver, StepsEventuallyQuiesce) {
  core::GridSimulation sim(sim_options(200, 17));
  AdaptationDriver& driver = sim.driver();
  int steps = 0;
  while (driver.step().has_value()) {
    ASSERT_LT(++steps, 2000) << "adaptation does not converge";
  }
  // Once quiescent, further steps stay quiescent (no oscillation).
  EXPECT_FALSE(driver.step().has_value());
  EXPECT_TRUE(sim.partition().validate().empty());
}

TEST(Driver, StatsCountPerMechanism) {
  core::GridSimulation sim(sim_options(300, 19));
  AdaptationDriver& driver = sim.driver();
  for (int i = 0; i < 5; ++i) driver.run_round();
  const auto& total = driver.total();
  std::size_t sum = 0;
  for (const std::size_t c : total.per_mechanism) sum += c;
  EXPECT_EQ(sum, total.executed);
  EXPECT_GT(total.executed, 0u);
  EXPECT_GE(total.triggered, total.executed);
}

TEST(Driver, DisablingAllMechanismsMeansNoAdaptations) {
  auto opt = sim_options(200, 23);
  opt.planner.enabled.fill(false);
  core::GridSimulation sim(opt);
  const auto stats = sim.driver().run_round();
  EXPECT_EQ(stats.executed, 0u);
}

TEST(Driver, AdaptationNeverBreaksPartition) {
  core::GridSimulation sim(sim_options(300, 29));
  for (int round = 0; round < 10; ++round) {
    sim.migrate_hotspots();  // moving hot spots between rounds
    sim.driver().run_round();
    ASSERT_TRUE(sim.partition().validate_fast().empty()) << "round " << round;
  }
  EXPECT_TRUE(sim.partition().validate().empty());
}

TEST(AdaptationStats, MergeAccumulates) {
  AdaptationStats a, b;
  Plan plan;
  plan.mechanism = Mechanism::kSwitchPrimary;
  plan.valid = true;
  a.account(plan);
  b.account(plan);
  b.triggered = 5;
  a.merge(b);
  EXPECT_EQ(a.executed, 2u);
  EXPECT_EQ(a.triggered, 5u);
  EXPECT_EQ(a.per_mechanism[static_cast<std::size_t>(
                Mechanism::kSwitchPrimary)],
            2u);
}

}  // namespace
}  // namespace geogrid::loadbalance
