// Greedy geographic routing over the partition.
#include "overlay/router.h"

#include <gtest/gtest.h>

#include "overlay/basic_ops.h"
#include "overlay/partition.h"

namespace geogrid::overlay {
namespace {

const Rect kPlane{0, 0, 64, 64};

net::NodeInfo make_node(std::uint32_t id, double x, double y) {
  net::NodeInfo n;
  n.id = NodeId{id};
  n.coord = Point{x, y};
  n.capacity = 10.0;
  return n;
}

/// Builds an exactly uniform 4x4 grid of 16x16-mile regions by splitting
/// every region once per round (Y, X, Y, X).
Partition grid16() {
  Partition p(kPlane);
  std::uint32_t id = 1;
  p.add_node(make_node(id, 8, 8));
  p.create_root(NodeId{id});
  ++id;
  for (int round = 0; round < 4; ++round) {
    std::vector<RegionId> existing;
    for (const auto& [rid, r] : p.regions()) existing.push_back(rid);
    for (const RegionId rid : existing) {
      p.add_node(make_node(id, 8, 8));
      p.split_explicit(rid, NodeId{id}, /*give_high=*/true);
      ++id;
    }
  }
  return p;
}

TEST(GreedyNext, PicksClosestCandidate) {
  const std::vector<HopCandidate> candidates{
      {RegionId{1}, Rect{0, 0, 10, 10}},
      {RegionId{2}, Rect{10, 0, 10, 10}},
      {RegionId{3}, Rect{20, 0, 10, 10}},
  };
  EXPECT_EQ(*greedy_next(candidates, Point{25, 5}), (RegionId{3}));
  EXPECT_EQ(*greedy_next(candidates, Point{1, 1}), (RegionId{1}));
}

TEST(GreedyNext, SkipsVisited) {
  const std::vector<HopCandidate> candidates{
      {RegionId{1}, Rect{0, 0, 10, 10}},
      {RegionId{2}, Rect{10, 0, 10, 10}},
  };
  const auto next = greedy_next(candidates, Point{1, 1}, [](RegionId id) {
    return id == RegionId{1};
  });
  EXPECT_EQ(*next, (RegionId{2}));
}

TEST(GreedyNext, AllVisitedReturnsNothing) {
  const std::vector<HopCandidate> candidates{
      {RegionId{1}, Rect{0, 0, 10, 10}},
  };
  EXPECT_FALSE(
      greedy_next(candidates, Point{1, 1}, [](RegionId) { return true; })
          .has_value());
}

TEST(GreedyNext, TieBreaksOnAreaThenId) {
  const std::vector<HopCandidate> candidates{
      {RegionId{7}, Rect{10, 0, 10, 10}},
      {RegionId{3}, Rect{10, 0, 10, 10}},   // identical rect: smaller id wins
      {RegionId{1}, Rect{10, 10, 20, 20}},  // same distance, bigger area
  };
  EXPECT_EQ(*greedy_next(candidates, Point{5, 5}), (RegionId{3}));
}

TEST(Router, RouteToSelf) {
  Partition p(kPlane);
  p.add_node(make_node(1, 10, 10));
  const RegionId root = p.create_root(NodeId{1});
  const auto r = route_greedy(p, root, Point{32, 32});
  EXPECT_TRUE(r.reached);
  EXPECT_EQ(r.executor, root);
  EXPECT_EQ(r.hops, 0u);
}

TEST(Router, ReachesEveryRegionFromEveryRegion) {
  const Partition p = grid16();
  ASSERT_EQ(p.region_count(), 16u);
  for (const auto& [from, fr] : p.regions()) {
    for (const auto& [to, tr] : p.regions()) {
      const auto r = route_greedy(p, from, tr.rect.center());
      EXPECT_TRUE(r.reached);
      EXPECT_EQ(r.executor, to);
    }
  }
}

TEST(Router, HopCountMatchesManhattanOnUniformGrid) {
  const Partition p = grid16();
  // Opposite corners of a 4x4 grid: exactly 6 hops under greedy routing.
  const RegionId from = p.locate({1, 1});
  const auto r = route_greedy(p, from, Point{63, 63});
  EXPECT_TRUE(r.reached);
  EXPECT_EQ(r.hops, 6u);
  // Path is loop-free on a uniform grid.
  std::set<RegionId> unique(r.path.begin(), r.path.end());
  EXPECT_EQ(unique.size(), r.path.size());
}

TEST(Router, PathEndpointsAreSourceAndExecutor) {
  const Partition p = grid16();
  const RegionId from = p.locate({1, 1});
  const auto r = route_greedy(p, from, Point{50, 50});
  ASSERT_TRUE(r.reached);
  EXPECT_EQ(r.path.front(), from);
  EXPECT_EQ(r.path.back(), r.executor);
}

TEST(Router, InvalidSourceFails) {
  const Partition p = grid16();
  const auto r = route_greedy(p, RegionId{9999}, Point{1, 1});
  EXPECT_FALSE(r.reached);
}

TEST(Router, OverlappingNeighborsForDissemination) {
  const Partition p = grid16();
  // Query area centered in one region, spilling into its neighbors.
  const RegionId executor = p.locate({24, 24});
  const Rect query{14, 14, 16, 16};
  const auto overlapping = overlapping_neighbors(p, executor, query);
  // The executor's region is <16,16,16,16>; the query spills across its
  // west and south edges into the two edge-adjacent regions there (the SW
  // corner region touches only at a corner and is not a neighbor).
  EXPECT_EQ(overlapping.size(), 2u);
  for (const RegionId rid : overlapping) {
    EXPECT_TRUE(p.region(rid).rect.intersects(query));
  }
}

TEST(Router, DisseminationSkipsNonOverlapping) {
  const Partition p = grid16();
  const RegionId executor = p.locate({24, 24});
  const Rect tiny{23, 23, 2, 2};  // strictly interior
  EXPECT_TRUE(overlapping_neighbors(p, executor, tiny).empty());
}

}  // namespace
}  // namespace geogrid::overlay
