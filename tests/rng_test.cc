// Deterministic RNG: reproducibility, ranges, distribution sanity.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace geogrid {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanApproximatesMidpoint) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(19);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0], 10000, 700);
  EXPECT_NEAR(counts[1], 30000, 1000);
  EXPECT_NEAR(counts[2], 60000, 1100);
}

TEST(Rng, WeightedIndexSkipsZeroWeights) {
  Rng rng(23);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  // Child and parent draws are distinct streams.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == child.next() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace geogrid
