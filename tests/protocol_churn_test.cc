// Protocol-mode churn: interleaved joins, departures and crashes with the
// service staying available throughout.
#include <gtest/gtest.h>

#include "core/cluster.h"

namespace geogrid::core {
namespace {

TEST(ProtocolChurn, MixedChurnKeepsPlaneCovered) {
  Cluster::Options opt;
  opt.node.mode = GridMode::kDualPeer;
  opt.seed = 31;
  Cluster cluster(opt);

  for (int i = 0; i < 40; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(20);

  Rng rng(77);
  std::vector<GeoGridNode*> active;
  for (auto& node : cluster.nodes()) active.push_back(node.get());

  for (int wave = 0; wave < 5; ++wave) {
    // Two departures (one graceful, one crash) and three arrivals.
    for (int k = 0; k < 2 && active.size() > 10; ++k) {
      const auto idx = rng.uniform_index(active.size());
      GeoGridNode* victim = active[idx];
      if (k == 0) {
        victim->leave();
      } else {
        victim->crash();
        cluster.bootstrap().unregister(victim->info().id);
      }
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    for (int k = 0; k < 3; ++k) active.push_back(&cluster.spawn());
    cluster.run_for(90.0);  // detection + repair + gossip
  }
  cluster.run_for(120.0);

  // Exactly one primary per region, whole plane covered.
  double covered = 0.0;
  std::map<RegionId, int> primaries;
  for (GeoGridNode* node : active) {
    for (const auto& [rid, region] : node->owned()) {
      if (!region.is_primary()) continue;
      covered += region.rect.area();
      primaries[rid] += 1;
    }
  }
  for (const auto& [rid, count] : primaries) {
    EXPECT_EQ(count, 1) << "region " << rid;
  }
  EXPECT_NEAR(covered, 64.0 * 64.0, 1e-6);
}

TEST(ProtocolChurn, ServiceAvailableDuringChurn) {
  Cluster::Options opt;
  opt.node.mode = GridMode::kDualPeer;
  opt.seed = 33;
  Cluster cluster(opt);
  for (int i = 0; i < 30; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(20);

  int results = 0;
  auto& issuer = *cluster.nodes().front();
  issuer.on_result = [&](const net::QueryResult&) { ++results; };

  // Crash one node mid-stream and keep querying.
  cluster.nodes()[10]->crash();
  for (int i = 0; i < 10; ++i) {
    issuer.submit_query(Rect{6.0 * i + 1.0, 30, 2, 2}, "traffic");
    cluster.run_for(12.0);
  }
  // Most queries succeed despite the crash (the one aimed at the dead
  // region may be lost before fail-over completes).
  EXPECT_GE(results, 8);
}

TEST(ProtocolChurn, RejoinAfterLeaveWorks) {
  Cluster::Options opt;
  opt.node.mode = GridMode::kDualPeer;
  opt.seed = 35;
  Cluster cluster(opt);
  for (int i = 0; i < 20; ++i) cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined());
  cluster.run_for(10);

  cluster.nodes()[3]->leave();
  cluster.run_for(30);

  // A brand-new node joins the shrunken overlay without trouble.
  auto& fresh = cluster.spawn();
  ASSERT_TRUE(cluster.run_until_joined(300));
  EXPECT_TRUE(fresh.joined());
  EXPECT_FALSE(fresh.owned().empty());
}

}  // namespace
}  // namespace geogrid::core
