// Wire codec: primitive round-trips and malformed-input rejection.
#include "net/codec.h"

#include <gtest/gtest.h>

#include <limits>

namespace geogrid::net {
namespace {

TEST(Codec, PrimitiveRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.string("hello geogrid");
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.string(), "hello geogrid");
  EXPECT_TRUE(r.done());
}

TEST(Codec, VarintRoundTripBoundaries) {
  const std::uint64_t cases[] = {
      0, 1, 127, 128, 16383, 16384,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    Writer w;
    w.varint(v);
    Reader r(w.bytes());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Codec, VarintCompactness) {
  Writer w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Codec, FloatSpecials) {
  Writer w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  Reader r(w.bytes());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), -0.0);
}

TEST(Codec, GeometryRoundTrip) {
  Writer w;
  w.point(geogrid::Point{1.5, -2.25});
  w.rect(geogrid::Rect{0, 32, 64, 32});
  Reader r(w.bytes());
  EXPECT_EQ(r.point(), (geogrid::Point{1.5, -2.25}));
  EXPECT_EQ(r.rect(), (geogrid::Rect{0, 32, 64, 32}));
}

TEST(Codec, IdsRoundTrip) {
  Writer w;
  w.node_id(geogrid::NodeId{42});
  w.region_id(geogrid::RegionId{7});
  w.node_id(geogrid::kInvalidNode);
  Reader r(w.bytes());
  EXPECT_EQ(r.node_id(), (geogrid::NodeId{42}));
  EXPECT_EQ(r.region_id(), (geogrid::RegionId{7}));
  EXPECT_FALSE(r.node_id().valid());
}

TEST(Codec, TruncatedInputThrows) {
  Writer w;
  w.u32(12345);
  Reader r(w.bytes().data(), 2);  // cut in half
  EXPECT_THROW(r.u32(), CodecError);
}

TEST(Codec, TruncatedStringThrows) {
  Writer w;
  w.varint(100);  // declares a 100-byte string that never follows
  Reader r(w.bytes());
  EXPECT_THROW(r.string(), CodecError);
}

TEST(Codec, OverlongVarintThrows) {
  std::vector<std::byte> bad(11, std::byte{0xff});
  Reader r(bad);
  EXPECT_THROW(r.varint(), CodecError);
}

TEST(Codec, EmptyString) {
  Writer w;
  w.string("");
  Reader r(w.bytes());
  EXPECT_EQ(r.string(), "");
}

}  // namespace
}  // namespace geogrid::net
