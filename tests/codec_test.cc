// Wire codec: primitive round-trips and malformed-input rejection, plus
// field-level round-trips for the subscription/notification message family.
#include "net/codec.h"

#include <gtest/gtest.h>

#include <limits>

#include "net/messages.h"

namespace geogrid::net {
namespace {

TEST(Codec, PrimitiveRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.string("hello geogrid");
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.string(), "hello geogrid");
  EXPECT_TRUE(r.done());
}

TEST(Codec, VarintRoundTripBoundaries) {
  const std::uint64_t cases[] = {
      0, 1, 127, 128, 16383, 16384,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    Writer w;
    w.varint(v);
    Reader r(w.bytes());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Codec, VarintCompactness) {
  Writer w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Codec, FloatSpecials) {
  Writer w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  Reader r(w.bytes());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), -0.0);
}

TEST(Codec, GeometryRoundTrip) {
  Writer w;
  w.point(geogrid::Point{1.5, -2.25});
  w.rect(geogrid::Rect{0, 32, 64, 32});
  Reader r(w.bytes());
  EXPECT_EQ(r.point(), (geogrid::Point{1.5, -2.25}));
  EXPECT_EQ(r.rect(), (geogrid::Rect{0, 32, 64, 32}));
}

TEST(Codec, IdsRoundTrip) {
  Writer w;
  w.node_id(geogrid::NodeId{42});
  w.region_id(geogrid::RegionId{7});
  w.node_id(geogrid::kInvalidNode);
  Reader r(w.bytes());
  EXPECT_EQ(r.node_id(), (geogrid::NodeId{42}));
  EXPECT_EQ(r.region_id(), (geogrid::RegionId{7}));
  EXPECT_FALSE(r.node_id().valid());
}

TEST(Codec, TruncatedInputThrows) {
  Writer w;
  w.u32(12345);
  Reader r(w.bytes().data(), 2);  // cut in half
  EXPECT_THROW(r.u32(), CodecError);
}

TEST(Codec, TruncatedStringThrows) {
  Writer w;
  w.varint(100);  // declares a 100-byte string that never follows
  Reader r(w.bytes());
  EXPECT_THROW(r.string(), CodecError);
}

TEST(Codec, OverlongVarintThrows) {
  std::vector<std::byte> bad(11, std::byte{0xff});
  Reader r(bad);
  EXPECT_THROW(r.varint(), CodecError);
}

TEST(Codec, EmptyString) {
  Writer w;
  w.string("");
  Reader r(w.bytes());
  EXPECT_EQ(r.string(), "");
}

// --- Subscription / notification message family -------------------------
//
// messages_test.cc proves byte-level round-trips for every message type;
// these tests additionally pin each decoded *field* so a codec change that
// swaps two same-width fields (and thus still re-encodes identically) is
// caught here.

namespace {

NodeInfo subscriber_node() {
  NodeInfo n;
  n.id = geogrid::NodeId{77};
  n.coord = geogrid::Point{3.25, -1.5};
  n.capacity = 55.5;
  return n;
}

template <typename M>
M field_roundtrip(const M& m) {
  Writer w;
  m.encode(w);
  Reader r(w.bytes());
  M out = M::decode(r);
  EXPECT_TRUE(r.done()) << "decoder left trailing bytes";
  return out;
}

}  // namespace

TEST(Codec, SubscribeFieldsRoundTrip) {
  Subscribe s;
  s.sub_id = 0xfeedfacecafeULL;
  s.subscriber = subscriber_node();
  s.area = geogrid::Rect{10.5, 20.25, 4.0, 2.0};
  s.filter = "traffic/cam-12";
  s.duration = 3600.5;
  s.disseminated = true;
  const Subscribe d = field_roundtrip(s);
  EXPECT_EQ(d.sub_id, s.sub_id);
  EXPECT_EQ(d.subscriber.id, s.subscriber.id);
  EXPECT_EQ(d.subscriber.coord, s.subscriber.coord);
  EXPECT_DOUBLE_EQ(d.subscriber.capacity, s.subscriber.capacity);
  EXPECT_EQ(d.area, s.area);
  EXPECT_EQ(d.filter, s.filter);
  EXPECT_DOUBLE_EQ(d.duration, s.duration);
  EXPECT_TRUE(d.disseminated);
}

TEST(Codec, SubscribeAckFieldsRoundTrip) {
  SubscribeAck a;
  a.sub_id = 99;
  a.region = geogrid::RegionId{41};
  const SubscribeAck d = field_roundtrip(a);
  EXPECT_EQ(d.sub_id, 99u);
  EXPECT_EQ(d.region, (geogrid::RegionId{41}));
}

TEST(Codec, PublishFieldsRoundTrip) {
  Publish p;
  p.location = geogrid::Point{30.0, 40.0};
  p.topic = "parking";
  p.payload = "lot B: 0 spots";
  const Publish d = field_roundtrip(p);
  EXPECT_EQ(d.location, p.location);
  EXPECT_EQ(d.topic, p.topic);
  EXPECT_EQ(d.payload, p.payload);
}

TEST(Codec, NotifyFieldsRoundTrip) {
  Notify n;
  n.sub_id = 512;
  n.topic = "geofence";
  n.payload = "enter u42 @(1.000000, 2.000000)";
  const Notify d = field_roundtrip(n);
  EXPECT_EQ(d.sub_id, 512u);
  EXPECT_EQ(d.topic, n.topic);
  EXPECT_EQ(d.payload, n.payload);
}

TEST(Codec, UnsubscribeFieldsRoundTrip) {
  Unsubscribe u;
  u.sub_id = 0xabc;
  u.subscriber = subscriber_node();
  u.area = geogrid::Rect{1.0, 2.0, 3.0, 4.0};
  u.disseminated = true;
  const Unsubscribe d = field_roundtrip(u);
  EXPECT_EQ(d.sub_id, 0xabcu);
  EXPECT_EQ(d.subscriber.id, u.subscriber.id);
  EXPECT_EQ(d.area, u.area);
  EXPECT_TRUE(d.disseminated);
}

TEST(Codec, SubscribeEmptyFilterStaysEmpty) {
  Subscribe s;
  s.subscriber = subscriber_node();
  s.area = geogrid::Rect{0, 0, 1, 1};
  const Subscribe d = field_roundtrip(s);
  EXPECT_EQ(d.filter, "");
  EXPECT_FALSE(d.disseminated);
}

}  // namespace
}  // namespace geogrid::net
