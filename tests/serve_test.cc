// The serving edge end-to-end over real loopback sockets: lifecycle, the
// wire-vs-in-process byte-identity contract, notification push,
// query-after-update visibility, backpressure gating, and hostile-input
// survival — each run under both poller backends.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "mobility/query_engine.h"
#include "mobility/sharded_directory.h"
#include "net/framing.h"
#include "overlay/partition.h"
#include "pubsub/notification_engine.h"
#include "pubsub/subscription_index.h"
#include "serve/client.h"

namespace geogrid::serve {
namespace {

using mobility::LocationRecord;
using mobility::Query;
using mobility::QueryEngine;
using mobility::ShardedDirectory;
using pubsub::NotificationEngine;
using pubsub::SubscriptionIndex;

constexpr Rect kPlane{0.0, 0.0, 64.0, 64.0};

// The mobile-layer quadrant geometry shared with the mobility/pubsub
// suites: four regions via two split rounds.
struct QuadrantFixture {
  overlay::Partition partition{kPlane};
  QuadrantFixture() {
    const NodeId a = partition.add_node({NodeId{1}, Point{10, 10}, 10.0});
    const NodeId b = partition.add_node({NodeId{2}, Point{10, 50}, 10.0});
    const NodeId c = partition.add_node({NodeId{3}, Point{50, 10}, 10.0});
    const NodeId d = partition.add_node({NodeId{4}, Point{50, 50}, 10.0});
    const RegionId root = partition.create_root(a);
    const RegionId north = partition.split(root, b);
    partition.split(root, c);
    partition.split(north, d);
    EXPECT_EQ(partition.region_count(), 4u);
  }
};

/// One full engine complement.  The server test always runs two: a sharded
/// multi-threaded stack behind the wire and a serial single-shard stack as
/// the in-process reference — identical answers are the contract.
struct EngineStack {
  QuadrantFixture fx;
  ShardedDirectory dir;
  QueryEngine queries;
  SubscriptionIndex subs;
  NotificationEngine notify;

  EngineStack(std::size_t shards, std::size_t threads)
      : dir(fx.partition, {.shards = shards, .track_deltas = true}),
        queries(dir, {.threads = threads}),
        subs(kPlane),
        notify(dir, subs, {.threads = threads}) {}

  ServerEngines engines() { return {dir, queries, subs, notify}; }

  std::vector<std::byte> dir_bytes() const {
    net::Writer w;
    dir.serialize(w);
    return std::move(w).take();
  }
};

/// Deterministic fleet positions inside the plane; epoch e moves every
/// `stride`-th user a little.
std::vector<LocationRecord> fleet_batch(std::size_t users, std::uint64_t seq,
                                        std::size_t stride = 1) {
  std::vector<LocationRecord> recs;
  recs.reserve(users);
  for (std::size_t i = 0; i < users; ++i) {
    const double base_x = static_cast<double>((i * 7 + 3) % 61) + 0.5;
    const double base_y = static_cast<double>((i * 13 + 5) % 59) + 0.5;
    Point p{base_x, base_y};
    if (i % stride == 0) {
      p.x += 0.25 * static_cast<double>(seq % 3);
      p.y += 0.25 * static_cast<double>(seq % 2);
    }
    recs.push_back(LocationRecord{
        UserId{static_cast<std::uint32_t>(i + 1)}, p, seq, 0.0});
  }
  return recs;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

std::vector<std::byte> result_bytes(
    std::span<const mobility::QueryResult> results) {
  net::Writer w;
  QueryEngine::serialize(w, results);
  return std::move(w).take();
}

std::vector<std::byte> notify_bytes(std::span<const net::Notify> batch) {
  std::vector<std::byte> out;
  for (const net::Notify& n : batch) {
    const auto frame = net::encode_message(net::Message{n});
    out.insert(out.end(), frame.begin(), frame.end());
  }
  return out;
}

class ServeTest : public ::testing::TestWithParam<bool> {
 protected:
  core::ServeOptions base_options() const {
    core::ServeOptions opt;
    opt.use_poll = GetParam();
    return opt;
  }

  Client make_client(const Server& server) {
    Client::Options copt;
    copt.port = server.port();
    Client c(copt);
    c.connect();
    return c;
  }
};

TEST_P(ServeTest, StartStopAssignsEphemeralPort) {
  EngineStack stack(2, 1);
  Server server(stack.engines(), base_options());
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);

  Client c = make_client(server);
  EXPECT_TRUE(c.connected());
  EXPECT_TRUE(wait_until([&] { return server.connection_count() == 1; }));
  c.close();
  EXPECT_TRUE(wait_until([&] { return server.connection_count() == 0; }));
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_P(ServeTest, WireStreamsMatchInProcessEngines) {
  EngineStack wired(4, 2);    // behind the server
  EngineStack reference(1, 1);  // in-process, serial

  core::ServeOptions opt = base_options();
  opt.ingest_flush_records = 256;
  Server server(wired.engines(), opt);
  server.start();

  Client c = make_client(server);
  const std::vector<LocationRecord> batch = fleet_batch(500, 1);
  EXPECT_EQ(c.update_batch(batch), 500u);
  reference.dir.apply_updates(batch);

  // Mixed read batch over the wire vs the reference engine directly.
  std::vector<Query> queries;
  for (std::uint32_t i = 1; i <= 40; ++i) {
    queries.push_back(Query::locate(UserId{i * 13}));  // tail misses (>500)
  }
  queries.push_back(Query::range(Rect{0, 0, 32, 32}));
  queries.push_back(Query::range(Rect{16, 16, 40, 40}));
  queries.push_back(Query::nearest(Point{32, 32}, 8));
  queries.push_back(Query::nearest(Point{5, 60}, 3));

  const std::vector<mobility::QueryResult> got = c.query_batch(queries);
  const std::vector<mobility::QueryResult> want = reference.queries.run(queries);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(result_bytes(got), result_bytes(want));

  c.close();
  server.stop();
  // The stored state itself is byte-identical too (canonical across shard
  // counts; wire-ingested records are stamped timestamp 0.0 on both sides).
  EXPECT_EQ(wired.dir_bytes(), reference.dir_bytes());

  const auto counters = server.counters();
  EXPECT_EQ(counters.updates_in, 500u);
  EXPECT_EQ(counters.locates_in, 40u);
  EXPECT_EQ(counters.ranges_in, 2u);
  EXPECT_EQ(counters.nearests_in, 2u);
  EXPECT_GE(counters.ingest_flushes, 1u);
  EXPECT_GT(server.latency(net::MsgType::kLocationUpdate).count(), 0u);
  EXPECT_GT(server.latency(net::MsgType::kLocateRequest).count(), 0u);
}

TEST_P(ServeTest, NotificationsPushedOverTheWireMatchReference) {
  EngineStack wired(4, 2);
  EngineStack reference(1, 1);

  core::ServeOptions opt = base_options();
  opt.ingest_flush_records = 300;  // exactly one flush per 300-user batch
  opt.flush_deadline_ms = 10000;   // never the trigger here
  Server server(wired.engines(), opt);
  server.start();
  Client c = make_client(server);

  // Three subscription kinds, mirrored verbatim into the reference index.
  const Rect fence{0, 0, 24, 24};
  const Rect range{8, 8, 40, 40};
  c.subscribe_area(1, fence, geofence_filter(1));
  c.subscribe_area(2, range, range_filter(2));
  c.subscribe_friend(3, UserId{7});
  {
    net::Subscribe s1;
    s1.sub_id = 1;
    s1.area = fence;
    s1.filter = geofence_filter(1);
    reference.subs.subscribe(s1, subscription_spec(s1).kind);
    net::Subscribe s2;
    s2.sub_id = 2;
    s2.area = range;
    s2.filter = range_filter(2);
    reference.subs.subscribe(s2, subscription_spec(s2).kind);
    net::Subscribe s3;
    s3.sub_id = 3;
    s3.filter = friend_filter(UserId{7});
    reference.subs.subscribe_friend(s3, UserId{7});
  }

  std::vector<net::Notify> reference_stream;
  std::vector<net::Notify> wire_stream;
  for (std::uint64_t epoch = 1; epoch <= 4; ++epoch) {
    const std::vector<LocationRecord> batch =
        fleet_batch(300, epoch, /*stride=*/epoch == 1 ? 1 : 3);
    EXPECT_EQ(c.update_batch(batch), 300u);  // acks follow the epoch flush
    reference.dir.apply_updates(batch);
    std::size_t expected = 0;
    for (const pubsub::Notification& n : reference.notify.drain()) {
      reference_stream.push_back(reference.notify.to_notify(n));
      ++expected;
    }
    // The epoch's Notifys were queued right after its acks; keep polling
    // until the whole epoch's push arrived.
    EXPECT_TRUE(wait_until([&] {
      return c.poll_notifications(10) >= expected;
    }));
    for (net::Notify& n : c.take_notifications()) {
      wire_stream.push_back(std::move(n));
    }
  }

  EXPECT_FALSE(reference_stream.empty());
  EXPECT_EQ(wire_stream.size(), reference_stream.size());
  EXPECT_EQ(notify_bytes(wire_stream), notify_bytes(reference_stream));

  c.close();
  server.stop();
  EXPECT_EQ(server.counters().notifies_out, reference_stream.size());
  // Disconnect cleans up the standing subscriptions.
  EXPECT_EQ(wired.subs.size(), 0u);
}

TEST_P(ServeTest, QueryForcesVisibilityOfStagedUpdates) {
  EngineStack wired(2, 1);
  core::ServeOptions opt = base_options();
  opt.ingest_flush_records = 1 << 20;  // size never triggers
  opt.flush_deadline_ms = 10000;       // deadline never triggers
  Server server(wired.engines(), opt);
  server.start();
  Client c = make_client(server);

  const std::vector<LocationRecord> batch = fleet_batch(50, 1);
  c.update_batch(batch, /*wait_acks=*/false);
  // The locate must observe every update sent before it: the query flush
  // forces the ingest flush first.
  const mobility::QueryResult r = c.locate(UserId{17});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.located.user, UserId{17});
  EXPECT_EQ(r.located.seq, 1u);

  c.close();
  server.stop();
  const auto counters = server.counters();
  EXPECT_GE(counters.forced_flushes, 1u);
  EXPECT_EQ(counters.updates_in, 50u);
}

TEST_P(ServeTest, BackpressureGatesReadsUntilFlush) {
  EngineStack wired(2, 1);
  core::ServeOptions opt = base_options();
  opt.backpressure_records = 2048;  // tiny: force gating
  opt.ingest_flush_records = 1 << 20;
  opt.flush_deadline_ms = 1;  // drain via deadline flushes
  Server server(wired.engines(), opt);
  server.start();
  Client c = make_client(server);

  // ~20k updates is several hundred KB — far more than one 64KB read, so
  // the staged queue crosses the watermark mid-burst and the loop must
  // gate the socket, flush, re-open, and still ack everything.
  const std::vector<LocationRecord> batch = fleet_batch(20000, 1);
  EXPECT_EQ(c.update_batch(batch), 20000u);

  c.close();
  server.stop();
  const auto counters = server.counters();
  EXPECT_EQ(counters.updates_in, 20000u);
  EXPECT_EQ(counters.acks_out, 20000u);
  EXPECT_GT(counters.backpressure_gates, 0u);
  EXPECT_GT(counters.ingest_flushes, 1u);
}

TEST_P(ServeTest, MalformedFrameClosesConnectionServerSurvives) {
  EngineStack wired(2, 1);
  Server server(wired.engines(), base_options());
  server.start();

  // Hostile peer: six varint continuation bytes — an overlong length
  // prefix the decoder must reject.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const unsigned char garbage[6] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x80};
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));

  // The server cuts the connection (recv sees EOF) and stays up.
  EXPECT_TRUE(wait_until([&] {
    return server.counters().malformed_frames == 1;
  }));
  char buf[8];
  EXPECT_TRUE(wait_until([&] {
    return ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT) == 0;
  }));
  ::close(fd);

  Client c = make_client(server);
  c.update_batch(fleet_batch(10, 1));
  EXPECT_TRUE(c.locate(UserId{1}).found);
  c.close();
  server.stop();
  EXPECT_EQ(server.counters().malformed_frames, 1u);
}

TEST_P(ServeTest, OversizedFramePrefixCutsConnection) {
  EngineStack wired(2, 1);
  core::ServeOptions opt = base_options();
  opt.max_frame_bytes = 1024;
  Server server(wired.engines(), opt);
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  net::Writer w;
  w.varint(1u << 30);  // announce a 1GB frame
  ASSERT_GT(::send(fd, w.bytes().data(), w.bytes().size(), 0), 0);
  EXPECT_TRUE(wait_until([&] {
    return server.counters().malformed_frames == 1;
  }));
  char buf[8];
  EXPECT_TRUE(wait_until([&] {
    return ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT) == 0;
  }));
  ::close(fd);
  server.stop();
}

TEST_P(ServeTest, ConcurrentClientsAllServed) {
  EngineStack wired(4, 2);
  core::ServeOptions opt = base_options();
  opt.ingest_flush_records = 512;
  Server server(wired.engines(), opt);
  server.start();

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 1000;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> located{0};
  for (std::size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client::Options copt;
      copt.port = server.port();
      Client c(copt);
      c.connect();
      // Disjoint user ranges per client; each verifies its own slice.
      std::vector<LocationRecord> recs;
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const auto uid =
            static_cast<std::uint32_t>(t * kPerClient + i + 1);
        recs.push_back(LocationRecord{
            UserId{uid},
            Point{static_cast<double>(uid % 61) + 0.5,
                  static_cast<double>(uid % 59) + 0.5},
            1, 0.0});
      }
      ASSERT_EQ(c.update_batch(recs), kPerClient);
      std::vector<Query> qs;
      for (std::size_t i = 0; i < 32; ++i) {
        qs.push_back(Query::locate(
            UserId{static_cast<std::uint32_t>(t * kPerClient + i + 1)}));
      }
      for (const mobility::QueryResult& r : c.query_batch(qs)) {
        if (r.found) located.fetch_add(1, std::memory_order_relaxed);
      }
      c.close();
    });
  }
  for (std::thread& t : threads) t.join();
  server.stop();

  EXPECT_EQ(located.load(), kClients * 32);
  const auto counters = server.counters();
  EXPECT_EQ(counters.updates_in, kClients * kPerClient);
  EXPECT_EQ(counters.acks_out, kClients * kPerClient);
  EXPECT_EQ(counters.accepted, kClients);
}

TEST_P(ServeTest, UnsubscribeStopsPush) {
  EngineStack wired(2, 1);
  core::ServeOptions opt = base_options();
  opt.ingest_flush_records = 100;
  opt.flush_deadline_ms = 10000;
  Server server(wired.engines(), opt);
  server.start();
  Client c = make_client(server);

  c.subscribe_area(1, Rect{0, 0, 64, 64}, range_filter(1));
  EXPECT_EQ(c.update_batch(fleet_batch(100, 1)), 100u);
  c.poll_notifications(50);
  EXPECT_GT(c.take_notifications().size(), 0u);  // enters for the fleet

  c.unsubscribe(1);
  // The unsubscribe has no ack; a synchronous locate fences it (FIFO).
  c.locate(UserId{1});
  EXPECT_EQ(c.update_batch(fleet_batch(100, 2)), 100u);
  c.poll_notifications(50);
  EXPECT_EQ(c.take_notifications().size(), 0u);

  c.close();
  server.stop();
  EXPECT_EQ(wired.subs.size(), 0u);
}

std::string backend_name(const ::testing::TestParamInfo<bool>& param) {
  return param.param ? "PollBackend" : "EpollBackend";
}

INSTANTIATE_TEST_SUITE_P(Backends, ServeTest, ::testing::Values(false, true),
                         backend_name);

}  // namespace
}  // namespace geogrid::serve
