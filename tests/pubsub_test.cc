// Pub/sub: SubscriptionIndex correctness against brute force, notification
// event semantics per subscription kind, and the determinism contract —
// byte-identical notification streams across shard and thread counts, and
// incremental (delta) drains agreeing with the full-rescan path exactly.
#include "pubsub/notification_engine.h"
#include "pubsub/subscription_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "mobility/motion.h"
#include "mobility/sharded_directory.h"
#include "overlay/partition.h"

namespace geogrid::pubsub {
namespace {

using mobility::LocationRecord;
using mobility::ShardedDirectory;

constexpr Rect kPlane{0.0, 0.0, 64.0, 64.0};

// Same quadrant geometry as the mobility suites: four regions via two
// split rounds.
struct QuadrantFixture {
  overlay::Partition partition{kPlane};
  QuadrantFixture() {
    const NodeId a = partition.add_node({NodeId{1}, Point{10, 10}, 10.0});
    const NodeId b = partition.add_node({NodeId{2}, Point{10, 50}, 10.0});
    const NodeId c = partition.add_node({NodeId{3}, Point{50, 10}, 10.0});
    const NodeId d = partition.add_node({NodeId{4}, Point{50, 50}, 10.0});
    const RegionId root = partition.create_root(a);
    const RegionId north = partition.split(root, b);
    partition.split(root, c);
    partition.split(north, d);
    EXPECT_EQ(partition.region_count(), 4u);
  }
};

net::Subscribe sub_msg(std::uint64_t id, const Rect& area,
                       const char* filter = "") {
  net::Subscribe s;
  s.sub_id = id;
  s.subscriber.id = NodeId{static_cast<std::uint32_t>(id % 97 + 1)};
  s.subscriber.coord = area.center();
  s.area = area;
  s.filter = filter;
  return s;
}

LocationRecord rec(std::uint32_t user, double x, double y,
                   std::uint64_t seq = 1) {
  return LocationRecord{UserId{user}, Point{x, y}, seq, 0.0};
}

std::vector<std::uint64_t> covering_ids(const SubscriptionIndex& idx,
                                        const Point& p) {
  std::vector<CoverMatch> matches;
  idx.covering(p, matches);
  std::vector<std::uint64_t> ids;
  ids.reserve(matches.size());
  for (const CoverMatch& m : matches) ids.push_back(m.id);
  return ids;
}

std::vector<std::byte> serialize(std::span<const Notification> batch) {
  net::Writer w;
  NotificationEngine::serialize(w, batch);
  return std::move(w).take();
}

/// Seeded motion trace chopped into per-tick batches (the sharded-directory
/// suite's helper, shared shape).
std::vector<std::vector<LocationRecord>> make_trace(std::size_t users,
                                                    int ticks,
                                                    std::uint64_t seed) {
  mobility::UserPopulation::Options opt;
  opt.max_pause = 2.0;
  mobility::UserPopulation pop(users, opt, nullptr, Rng(seed));
  std::vector<std::vector<LocationRecord>> batches;
  double now = 0.0;
  for (int step = 0; step < ticks; ++step) {
    now += 1.0;
    pop.step(1.0, now);
    std::vector<LocationRecord> batch;
    batch.reserve(users);
    for (auto& u : pop.users()) {
      batch.push_back({u.id, u.position, u.next_seq++, now});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

// --- SubscriptionIndex ---------------------------------------------------

TEST(SubscriptionIndex, CoveringMatchesBruteForce) {
  SubscriptionIndex idx(kPlane);
  Rng rng(404);
  std::vector<SubRecord> reference;
  for (std::uint64_t id = 1; id <= 200; ++id) {
    const double w = rng.uniform(0.25, 8.0);
    const double h = rng.uniform(0.25, 8.0);
    const double x = rng.uniform(0.0, 64.0 - w);
    const double y = rng.uniform(0.0, 64.0 - h);
    const Rect area{x, y, w, h};
    const SubKind kind = rng.chance(0.5) ? SubKind::kGeofence : SubKind::kRange;
    idx.subscribe(sub_msg(id, area), kind);
    reference.push_back(SubRecord{id, kind, area, UserId{}});
  }
  idx.refresh();
  EXPECT_GT(idx.grid_dim(), 1u);  // population large enough to tune the grid

  for (int i = 0; i < 500; ++i) {
    const Point p{rng.uniform(0.0, 64.0), rng.uniform(0.0, 64.0)};
    std::vector<std::uint64_t> expected;
    for (const auto& s : reference) {
      if (s.area.covers(p)) expected.push_back(s.id);
    }
    // reference is already in ascending-id insertion order
    EXPECT_EQ(covering_ids(idx, p), expected) << "probe " << i;
  }
}

TEST(SubscriptionIndex, CoveringIsHalfOpenLikeLocationStoreRange) {
  SubscriptionIndex idx(kPlane);
  idx.subscribe(sub_msg(1, Rect{8, 8, 8, 8}));
  // Half-open on the low edges, closed on the high edges — the region
  // algebra's own cover test.
  EXPECT_TRUE(covering_ids(idx, Point{16, 16}).size() == 1);
  EXPECT_TRUE(covering_ids(idx, Point{8, 12}).empty());
  EXPECT_TRUE(covering_ids(idx, Point{12, 8}).empty());
  EXPECT_TRUE(covering_ids(idx, Point{8.001, 8.001}).size() == 1);
  EXPECT_TRUE(covering_ids(idx, Point{16.001, 12}).empty());
}

TEST(SubscriptionIndex, ResubscribeReplacesAndUnsubscribeRemoves) {
  SubscriptionIndex idx(kPlane);
  idx.subscribe(sub_msg(7, Rect{0, 0, 4, 4}));
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(covering_ids(idx, Point{2, 2}),
            (std::vector<std::uint64_t>{7}));

  // Resubscribing the same id moves the geometry, not adds a twin.
  idx.subscribe(sub_msg(7, Rect{30, 30, 4, 4}));
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_TRUE(covering_ids(idx, Point{2, 2}).empty());
  EXPECT_EQ(covering_ids(idx, Point{32, 32}),
            (std::vector<std::uint64_t>{7}));

  EXPECT_TRUE(idx.unsubscribe(7));
  EXPECT_FALSE(idx.unsubscribe(7));  // already gone
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_TRUE(covering_ids(idx, Point{32, 32}).empty());
}

TEST(SubscriptionIndex, UnsubscribeSwapRemoveKeepsProbesCorrect) {
  // Removing from the middle of the dense slot array relocates the last
  // subscription; every index (id map, grid cells, friend lists) must be
  // fixed up.  Probe after each removal against brute force.
  SubscriptionIndex idx(kPlane);
  Rng rng(11);
  std::vector<SubRecord> reference;
  for (std::uint64_t id = 1; id <= 64; ++id) {
    const Rect area{rng.uniform(0, 56), rng.uniform(0, 56), 6, 6};
    idx.subscribe(sub_msg(id, area));
    reference.push_back(SubRecord{id, SubKind::kGeofence, area, UserId{}});
  }
  idx.refresh();
  std::vector<std::uint64_t> order(64);
  for (std::uint64_t i = 0; i < 64; ++i) order[i] = i + 1;
  rng.shuffle(order);
  for (const std::uint64_t victim : order) {
    ASSERT_TRUE(idx.unsubscribe(victim));
    std::erase_if(reference, [&](const auto& s) { return s.id == victim; });
    const Point p{rng.uniform(0.0, 64.0), rng.uniform(0.0, 64.0)};
    std::vector<std::uint64_t> expected;
    for (const auto& s : reference) {
      if (s.area.covers(p)) expected.push_back(s.id);
    }
    EXPECT_EQ(covering_ids(idx, p), expected);
  }
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.rect_count(), 0u);
}

TEST(SubscriptionIndex, FriendSubscriptionsIndexByTrackedUser) {
  SubscriptionIndex idx(kPlane);
  idx.subscribe_friend(sub_msg(5, Rect{}), UserId{42});
  idx.subscribe_friend(sub_msg(3, Rect{}), UserId{42});
  idx.subscribe_friend(sub_msg(9, Rect{}), UserId{7});
  EXPECT_EQ(idx.rect_count(), 0u);  // friends never enter the grid

  const auto* list = idx.friends_of(UserId{42});
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0].first, 3u);  // ascending sub-id order
  EXPECT_EQ((*list)[1].first, 5u);
  EXPECT_EQ(idx.friends_of(UserId{1}), nullptr);

  EXPECT_TRUE(idx.unsubscribe(3));
  ASSERT_NE(idx.friends_of(UserId{42}), nullptr);
  EXPECT_EQ(idx.friends_of(UserId{42})->size(), 1u);
  EXPECT_TRUE(idx.unsubscribe(5));
  EXPECT_EQ(idx.friends_of(UserId{42}), nullptr);  // empty list dropped
}

TEST(SubscriptionIndex, CoverMatchTriplesCarrySlotAndKind) {
  // covering() emits (id, slot, kind) so the match loop never dereferences
  // the slot array; the triple must agree with the slot array anyway.
  SubscriptionIndex idx(kPlane);
  idx.subscribe(sub_msg(4, Rect{8, 8, 8, 8}), SubKind::kGeofence);
  idx.subscribe(sub_msg(2, Rect{10, 10, 8, 8}), SubKind::kRange);
  std::vector<CoverMatch> matches;
  idx.covering(Point{12, 12}, matches);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].id, 2u);  // ascending sub-id order
  EXPECT_EQ(matches[0].kind, SubKind::kRange);
  EXPECT_EQ(matches[1].id, 4u);
  EXPECT_EQ(matches[1].kind, SubKind::kGeofence);
  for (const CoverMatch& m : matches) {
    EXPECT_EQ(idx.at(m.slot).id, m.id);
    EXPECT_EQ(idx.at(m.slot).kind, m.kind);
  }
}

TEST(SubscriptionIndex, SimdCoveringParityRandomized) {
  // The SIMD probe (SoA cell columns + filter_rects_covering_point)
  // against a brute-force scalar scan over every rect subscription:
  // random rects plus the adversarial shapes — rects degenerate to lines
  // and points (cover nothing under the half-open test), rects flush with
  // the plane edges — probed at random points and exactly on subscription
  // boundaries, across populations small enough for a 1-cell grid and
  // large enough for a tuned one.
  for (const std::size_t population : {3u, 40u, 400u}) {
    SubscriptionIndex idx(kPlane);
    Rng rng(9000 + population);
    std::vector<SubRecord> reference;
    std::uint64_t id = 0;
    const auto add = [&](const Rect& area) {
      ++id;
      const SubKind kind =
          rng.chance(0.5) ? SubKind::kGeofence : SubKind::kRange;
      idx.subscribe(sub_msg(id, area), kind);
      reference.push_back(SubRecord{id, kind, area, UserId{}});
    };
    for (std::size_t i = 0; i < population; ++i) {
      const double roll = rng.uniform();
      if (roll < 0.1) {
        // Degenerate: a vertical line, horizontal line, or point.
        const double w = rng.chance(0.5) ? 0.0 : rng.uniform(0.5, 4.0);
        const double h = w > 0.0 && rng.chance(0.5) ? 0.0
                                                    : rng.uniform(0.0, 4.0);
        add(Rect{rng.uniform(0.0, 60.0), rng.uniform(0.0, 60.0), w,
                 rng.chance(0.3) ? 0.0 : h});
      } else if (roll < 0.25) {
        // Flush with a plane edge (or spanning the full plane).
        if (rng.chance(0.3)) {
          add(Rect{0, 0, 64, 64});
        } else {
          const double w = rng.uniform(1.0, 8.0);
          const double h = rng.uniform(1.0, 8.0);
          add(rng.chance(0.5) ? Rect{0.0, rng.uniform(0.0, 64.0 - h), w, h}
                              : Rect{64.0 - w, rng.uniform(0.0, 64.0 - h),
                                     w, h});
        }
      } else {
        const double w = rng.uniform(0.25, 10.0);
        const double h = rng.uniform(0.25, 10.0);
        add(Rect{rng.uniform(0.0, 64.0 - w), rng.uniform(0.0, 64.0 - h), w,
                 h});
      }
    }
    idx.refresh();
    ASSERT_TRUE(idx.validate());

    std::vector<Point> probes;
    for (int i = 0; i < 300; ++i) {
      probes.push_back(Point{rng.uniform(0.0, 64.0), rng.uniform(0.0, 64.0)});
    }
    // Half-open boundary hits: probe exactly on corners and edge midpoints
    // of sampled subscription rects (west/south must exclude, east/north
    // must include — brute force is the oracle either way).
    for (int i = 0; i < 60; ++i) {
      const Rect& r = reference[rng.uniform_index(reference.size())].area;
      probes.push_back(Point{r.x, r.y});
      probes.push_back(Point{r.right(), r.top()});
      probes.push_back(Point{r.x, r.top()});
      probes.push_back(Point{r.right(), r.y});
      probes.push_back(Point{r.x + r.width / 2.0, r.y});
      probes.push_back(Point{r.x, r.y + r.height / 2.0});
      probes.push_back(Point{r.x + r.width / 2.0, r.top()});
      probes.push_back(Point{r.right(), r.y + r.height / 2.0});
    }
    for (std::size_t p = 0; p < probes.size(); ++p) {
      std::vector<std::uint64_t> expected;
      for (const SubRecord& s : reference) {
        if (s.area.covers(probes[p])) expected.push_back(s.id);
      }
      ASSERT_EQ(covering_ids(idx, probes[p]), expected)
          << "population " << population << " probe " << p << " at ("
          << probes[p].x << ", " << probes[p].y << ")";
    }
  }
}

TEST(SubscriptionIndex, SubscribeUnsubscribeResubscribeKeepsColumnsInSync) {
  // The swap-remove dance must keep the hot SoA columns, the cold
  // side-table and the friend lists exactly consistent through arbitrary
  // churn — validate() audits every covered cell after each step.
  SubscriptionIndex idx(kPlane);
  Rng rng(77);
  for (std::uint64_t id = 1; id <= 40; ++id) {
    if (id % 5 == 0) {
      idx.subscribe_friend(sub_msg(id, Rect{}, "f"),
                           UserId{static_cast<std::uint32_t>(id)});
    } else {
      idx.subscribe(sub_msg(id, Rect{rng.uniform(0, 56), rng.uniform(0, 56),
                                     4, 4},
                            "area"),
                    id % 2 == 0 ? SubKind::kRange : SubKind::kGeofence);
    }
    ASSERT_TRUE(idx.validate()) << "after subscribe " << id;
  }
  idx.refresh();
  ASSERT_TRUE(idx.validate());

  // Unsubscribe half (hitting both ends of the slot array), then
  // resubscribe the same ids with new geometry and kind.
  for (std::uint64_t id = 1; id <= 40; id += 2) {
    ASSERT_TRUE(idx.unsubscribe(id));
    ASSERT_TRUE(idx.validate()) << "after unsubscribe " << id;
  }
  for (std::uint64_t id = 1; id <= 40; id += 2) {
    idx.subscribe(sub_msg(id, Rect{rng.uniform(0, 60), rng.uniform(0, 60),
                                   2, 2},
                          "back"),
                  SubKind::kRange);
    ASSERT_TRUE(idx.validate()) << "after resubscribe " << id;
  }
  EXPECT_EQ(idx.size(), 40u);
  // Resubscribing a *resident* id replaces in place (unsubscribe+insert);
  // columns must stay in sync through the replacement too.
  idx.subscribe(sub_msg(2, Rect{1, 1, 2, 2}, "moved"), SubKind::kGeofence);
  ASSERT_TRUE(idx.validate());
  EXPECT_EQ(idx.size(), 40u);
  EXPECT_EQ(covering_ids(idx, Point{2, 2}),
            (std::vector<std::uint64_t>{2}));
  // The cold side-table moved with the hot row.
  const SubRecord* rec = idx.find(2);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(*idx.filter_of(2), "moved");
}

TEST(SubscriptionIndex, FilterRectsCoveringPointMatchesScalar) {
  // The simd.h kernel directly, including tails shorter than a vector
  // width and boundary-exact probe coordinates.
  Rng rng(31337);
  for (const std::size_t n : {0u, 1u, 2u, 3u, 5u, 8u, 13u, 64u, 127u}) {
    std::vector<double> lo_x(n), lo_y(n), hi_x(n), hi_y(n);
    for (std::size_t i = 0; i < n; ++i) {
      lo_x[i] = rng.uniform(0.0, 32.0);
      lo_y[i] = rng.uniform(0.0, 32.0);
      // Mix in degenerate (hi == lo) columns.
      hi_x[i] = lo_x[i] + (rng.chance(0.2) ? 0.0 : rng.uniform(0.0, 32.0));
      hi_y[i] = lo_y[i] + (rng.chance(0.2) ? 0.0 : rng.uniform(0.0, 32.0));
    }
    for (int probe = 0; probe < 50; ++probe) {
      Point p{rng.uniform(0.0, 64.0), rng.uniform(0.0, 64.0)};
      if (n > 0 && probe % 3 == 0) {
        // Land exactly on someone's edges.
        const std::size_t i = rng.uniform_index(n);
        p.x = rng.chance(0.5) ? lo_x[i] : hi_x[i];
        p.y = rng.chance(0.5) ? lo_y[i] : hi_y[i];
      }
      std::vector<std::uint32_t> got(n + 1);
      got.resize(common::filter_rects_covering_point(
          lo_x.data(), lo_y.data(), hi_x.data(), hi_y.data(), n, p.x, p.y,
          got.data()));
      std::vector<std::uint32_t> want;
      for (std::size_t i = 0; i < n; ++i) {
        if (lo_x[i] < p.x && p.x <= hi_x[i] && lo_y[i] < p.y &&
            p.y <= hi_y[i]) {
          want.push_back(static_cast<std::uint32_t>(i));
        }
      }
      ASSERT_EQ(got, want) << "n=" << n << " probe=" << probe;
    }
  }
}

// --- NotificationEngine: event semantics ---------------------------------

TEST(NotificationEngine, EventSemanticsPerKind) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4, .track_deltas = true});
  SubscriptionIndex subs(kPlane);
  subs.subscribe(sub_msg(1, Rect{8, 8, 8, 8}, "fence"), SubKind::kGeofence);
  subs.subscribe(sub_msg(2, Rect{8, 8, 8, 8}, "track"), SubKind::kRange);
  subs.subscribe_friend(sub_msg(3, Rect{}, "friend"), UserId{7});
  NotificationEngine engine(dir, subs, {.threads = 1});

  // Epoch 1: user 7 appears inside the watched area; user 9 far away.
  dir.apply_updates(std::vector<LocationRecord>{rec(7, 12, 12, 1),
                                                rec(9, 50, 50, 1)});
  auto batch = engine.drain();
  ASSERT_EQ(batch.size(), 3u);  // first drain: everything is an enter
  EXPECT_EQ(batch[0],
            (Notification{1, UserId{7}, NotifyEvent::kEnter, Point{12, 12}}));
  EXPECT_EQ(batch[1],
            (Notification{2, UserId{7}, NotifyEvent::kEnter, Point{12, 12}}));
  EXPECT_EQ(batch[2],
            (Notification{3, UserId{7}, NotifyEvent::kEnter, Point{12, 12}}));

  // Epoch 2: user 7 moves inside the area.  The geofence stays silent, the
  // range subscription and the friend tracker report the motion.
  dir.apply_updates(std::vector<LocationRecord>{rec(7, 13, 13, 2)});
  batch = engine.drain();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0],
            (Notification{2, UserId{7}, NotifyEvent::kMove, Point{13, 13}}));
  EXPECT_EQ(batch[1],
            (Notification{3, UserId{7}, NotifyEvent::kMove, Point{13, 13}}));

  // Epoch 3: user 7 exits the area.  Both rect kinds fire leave; the
  // friend tracker keeps following (a move, never a leave).
  dir.apply_updates(std::vector<LocationRecord>{rec(7, 40, 40, 3)});
  batch = engine.drain();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0],
            (Notification{1, UserId{7}, NotifyEvent::kLeave, Point{40, 40}}));
  EXPECT_EQ(batch[1],
            (Notification{2, UserId{7}, NotifyEvent::kLeave, Point{40, 40}}));
  EXPECT_EQ(batch[2],
            (Notification{3, UserId{7}, NotifyEvent::kMove, Point{40, 40}}));

  // Epoch 4: user 7 re-reports the same position (paused user): applied by
  // the seq guard but stationary — no boundary crossed, nothing emitted.
  dir.apply_updates(std::vector<LocationRecord>{rec(7, 40, 40, 4)});
  batch = engine.drain();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(engine.counters().stationary_skips, 1u);

  EXPECT_EQ(engine.counters().drains, 4u);
  EXPECT_EQ(engine.counters().enters, 3u);
  EXPECT_EQ(engine.counters().leaves, 2u);
  EXPECT_EQ(engine.counters().moves, 3u);
  EXPECT_EQ(engine.counters().friend_events, 3u);
  EXPECT_EQ(engine.counters().full_rescans, 0u);
  EXPECT_EQ(engine.counters().last_epoch, 4u);
}

TEST(NotificationEngine, DrainWithoutNewEpochEmitsNothing) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2, .track_deltas = true});
  SubscriptionIndex subs(kPlane);
  subs.subscribe(sub_msg(1, Rect{8, 8, 8, 8}));
  NotificationEngine engine(dir, subs, {.threads = 1});
  dir.apply_updates(std::vector<LocationRecord>{rec(7, 12, 12, 1)});
  EXPECT_EQ(engine.drain().size(), 1u);
  EXPECT_TRUE(engine.drain().empty());  // same epoch: nothing new
  EXPECT_TRUE(engine.drain().empty());
}

TEST(NotificationEngine, TrimConsumedReleasesDeltaHistory) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2, .track_deltas = true});
  SubscriptionIndex subs(kPlane);
  NotificationEngine engine(dir, subs, {.threads = 1});
  dir.apply_updates(std::vector<LocationRecord>{rec(1, 10, 10, 1)});
  dir.apply_updates(std::vector<LocationRecord>{rec(1, 11, 11, 2)});
  EXPECT_EQ(dir.epoch_deltas().size(), 2u);
  engine.drain();
  EXPECT_TRUE(dir.epoch_deltas().empty());  // consumed epochs released
  EXPECT_EQ(dir.delta_floor(), 2u);
}

TEST(NotificationEngine, ToNotifyCarriesFilterAsTopic) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2, .track_deltas = true});
  SubscriptionIndex subs(kPlane);
  subs.subscribe(sub_msg(1, Rect{8, 8, 8, 8}, "parking"));
  NotificationEngine engine(dir, subs, {.threads = 1});
  dir.apply_updates(std::vector<LocationRecord>{rec(7, 12, 12, 1)});
  const auto batch = engine.drain();
  ASSERT_EQ(batch.size(), 1u);
  const net::Notify n = engine.to_notify(batch[0]);
  EXPECT_EQ(n.sub_id, 1u);
  EXPECT_EQ(n.topic, "parking");
  EXPECT_NE(n.payload.find("u7"), std::string::npos);
}

// --- NotificationEngine: determinism and the incremental contract --------

/// Installs a deterministic mixed-population of subscriptions.
void install_subs(SubscriptionIndex& subs, std::size_t count,
                  std::uint64_t seed) {
  Rng rng(seed);
  for (std::uint64_t id = 1; id <= count; ++id) {
    const double w = rng.uniform(0.5, 6.0);
    const double h = rng.uniform(0.5, 6.0);
    const Rect area{rng.uniform(0.0, 64.0 - w), rng.uniform(0.0, 64.0 - h),
                    w, h};
    const double roll = rng.uniform();
    if (roll < 0.4) {
      subs.subscribe(sub_msg(id, area), SubKind::kGeofence);
    } else if (roll < 0.8) {
      subs.subscribe(sub_msg(id, area), SubKind::kRange);
    } else {
      subs.subscribe_friend(
          sub_msg(id, area),
          UserId{static_cast<std::uint32_t>(rng.uniform_index(100) + 1)});
    }
  }
}

TEST(NotificationEngine, ByteIdenticalAcrossShardAndThreadCounts) {
  // The divergence-abort contract bench_notifications enforces at scale:
  // the serialized notification stream must not depend on the directory's
  // shard count or the engine's match fan-out.
  QuadrantFixture fx;
  ShardedDirectory dir_a(fx.partition, {.shards = 1, .track_deltas = true});
  ShardedDirectory dir_b(fx.partition, {.shards = 8, .track_deltas = true});
  SubscriptionIndex subs_a(kPlane);
  SubscriptionIndex subs_b(kPlane);
  install_subs(subs_a, 150, 5);
  install_subs(subs_b, 150, 5);
  NotificationEngine serial(dir_a, subs_a, {.threads = 1});
  NotificationEngine parallel(dir_b, subs_b, {.threads = 4});
  EXPECT_EQ(serial.thread_count(), 1u);
  EXPECT_EQ(parallel.thread_count(), 4u);

  std::uint64_t total = 0;
  for (const auto& batch : make_trace(100, 25, 99)) {
    dir_a.apply_updates(batch);
    dir_b.apply_updates(batch);
    const auto a = serial.drain();
    const auto b = parallel.drain();
    ASSERT_EQ(serialize(a), serialize(b));
    total += a.size();
  }
  EXPECT_GT(total, 0u);  // the trace actually produced notifications
  EXPECT_EQ(serial.counters().notifications,
            parallel.counters().notifications);
  EXPECT_EQ(serial.counters().enters, parallel.counters().enters);
  EXPECT_EQ(serial.counters().leaves, parallel.counters().leaves);
  EXPECT_EQ(serial.counters().moves, parallel.counters().moves);
}

TEST(NotificationEngine, IncrementalAgreesWithFullRescan) {
  // A directory without delta tracking forces the engine down the
  // full-rescan fallback every drain; the incremental (delta) path must
  // emit the exact same stream.
  QuadrantFixture fx;
  ShardedDirectory fast(fx.partition, {.shards = 4, .track_deltas = true});
  ShardedDirectory slow(fx.partition, {.shards = 4});  // no deltas
  SubscriptionIndex subs_fast(kPlane);
  SubscriptionIndex subs_slow(kPlane);
  install_subs(subs_fast, 120, 17);
  install_subs(subs_slow, 120, 17);
  NotificationEngine incremental(fast, subs_fast, {.threads = 2});
  NotificationEngine rescan(slow, subs_slow, {.threads = 2});

  // Only a small subset of the population moves (and reports) each tick,
  // so the ingest delta is a strict subset of the resident users.
  Rng rng(123);
  std::vector<std::uint64_t> seq(80, 0);
  std::size_t epochs = 0;
  for (int tick = 0; tick < 20; ++tick) {
    std::vector<LocationRecord> batch;
    for (std::uint32_t u = 0; u < 80; ++u) {
      // Everyone reports on tick 0 (initial placement), then ~20% per tick.
      if (tick > 0 && !rng.chance(0.2)) continue;
      batch.push_back(rec(u + 1, rng.uniform(0.0, 64.0),
                          rng.uniform(0.0, 64.0), ++seq[u]));
    }
    if (!batch.empty()) ++epochs;
    fast.apply_updates(batch);
    slow.apply_updates(batch);
    ASSERT_EQ(serialize(incremental.drain()), serialize(rescan.drain()));
  }
  ASSERT_GT(epochs, 1u);
  EXPECT_EQ(incremental.counters().full_rescans, 0u);
  // rescan's first drain is the bootstrap scan, not a fallback; every
  // later drain had no delta to consume.
  EXPECT_EQ(rescan.counters().full_rescans, epochs - 1);
  // The incremental engine matched far fewer candidate users per epoch
  // than the rescans (that asymmetry is the whole point).
  EXPECT_LT(incremental.counters().delta_users,
            rescan.counters().delta_users);
}

TEST(NotificationEngine, RecoversWhenDeltaHistoryWasTrimmed) {
  // An engine that falls behind the directory's retained history must
  // detect the gap and full-rescan instead of missing events.
  QuadrantFixture fx;
  ShardedDirectory dir(
      fx.partition,
      {.shards = 2, .track_deltas = true, .delta_retention = 1});
  SubscriptionIndex subs(kPlane);
  subs.subscribe(sub_msg(1, Rect{8, 8, 8, 8}));
  NotificationEngine engine(dir, subs,
                            {.threads = 1, .trim_consumed = false});

  dir.apply_updates(std::vector<LocationRecord>{rec(7, 40, 40, 1)});
  EXPECT_TRUE(engine.drain().empty());  // outside the fence

  // Two epochs pass without a drain; retention=1 discards the first, so
  // the published snapshot can no longer carry a delta back to epoch 1.
  dir.apply_updates(std::vector<LocationRecord>{rec(7, 12, 12, 2)});
  dir.apply_updates(std::vector<LocationRecord>{rec(8, 50, 50, 1)});
  const auto batch = engine.drain();
  ASSERT_EQ(batch.size(), 1u);  // the enter was not lost
  EXPECT_EQ(batch[0],
            (Notification{1, UserId{7}, NotifyEvent::kEnter, Point{12, 12}}));
  EXPECT_EQ(engine.counters().full_rescans, 1u);
}

TEST(NotificationEngine, RegionMigrationEmitsNoSpuriousNotifications) {
  // Adaptation moves records between stores without moving users: a merge
  // retires a region and ShardedDirectory::migrate_regions re-homes its
  // records, pushing the affected users into the next epoch delta.  The
  // engine must examine them (they are in the delta) and emit nothing —
  // their positions did not change, so no boundary was crossed.
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4, .track_deltas = true});
  SubscriptionIndex subs(kPlane);
  // Fence and range both covering the SE users who are about to migrate,
  // plus a friend tracker on one of them.
  subs.subscribe(sub_msg(1, Rect{44, 12, 12, 12}, "fence"), SubKind::kGeofence);
  subs.subscribe(sub_msg(2, Rect{44, 12, 12, 12}, "track"), SubKind::kRange);
  subs.subscribe_friend(sub_msg(3, Rect{}, "friend"), UserId{20});
  NotificationEngine engine(dir, subs, {.threads = 1});

  dir.apply_updates(std::vector<LocationRecord>{
      rec(20, 48, 16, 1), rec(21, 50, 18, 1), rec(30, 12, 12, 1)});
  EXPECT_EQ(engine.drain().size(), 5u);  // enters: 20 matches all 3, 21 both rects

  // Merge SE away and migrate; users 20 and 21 change stores, not places.
  const RegionId sw = fx.partition.locate({16, 16});
  fx.partition.merge(sw, fx.partition.locate({48, 16}));
  const auto rpt = dir.migrate_regions();
  EXPECT_EQ(rpt.moved, 2u);
  const auto delta = dir.changed_since(dir.ingest_epoch() - 1);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(*delta, (std::vector<UserId>{UserId{20}, UserId{21}}));

  const auto batch = engine.drain();
  EXPECT_TRUE(batch.empty()) << "migration alone must be silent";
  EXPECT_EQ(engine.counters().stationary_skips, 2u);
  EXPECT_EQ(engine.counters().full_rescans, 0u);  // delta path, not rescan

  // The engine keeps working normally across the adaptation: real motion
  // by a migrated user still notifies.
  dir.apply_updates(std::vector<LocationRecord>{rec(20, 30, 30, 2)});
  const auto after = engine.drain();
  ASSERT_EQ(after.size(), 3u);  // leave fence, leave range, friend move
  EXPECT_EQ(after[0].event, NotifyEvent::kLeave);
  EXPECT_EQ(after[1].event, NotifyEvent::kLeave);
  EXPECT_EQ(after[2].event, NotifyEvent::kMove);
}

TEST(NotificationEngine, MigrationMixedWithMotionNotifiesOnlyTheMovers) {
  // One epoch of real movement immediately after a migration epoch: the
  // drain spans both epochs and must emit events only for users whose
  // position actually changed.
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2, .track_deltas = true});
  SubscriptionIndex subs(kPlane);
  subs.subscribe(sub_msg(1, Rect{40, 8, 20, 20}), SubKind::kRange);
  NotificationEngine engine(dir, subs, {.threads = 1});

  dir.apply_updates(std::vector<LocationRecord>{
      rec(20, 48, 16, 1), rec(21, 50, 18, 1)});
  EXPECT_EQ(engine.drain().size(), 2u);

  fx.partition.merge(fx.partition.locate({16, 16}),
                     fx.partition.locate({48, 16}));
  EXPECT_EQ(dir.migrate_regions().moved, 2u);      // epoch N: silent
  dir.apply_updates(std::vector<LocationRecord>{   // epoch N+1: one mover
      rec(21, 51, 19, 2)});

  const auto batch = engine.drain();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], (Notification{1, UserId{21}, NotifyEvent::kMove,
                                    Point{51, 19}}));
}

}  // namespace
}  // namespace geogrid::pubsub
