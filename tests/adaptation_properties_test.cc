// Property suite: every executed adaptation is locally safe — it never
// raises the worst workload index among the nodes it touches — and the
// partition invariants survive arbitrarily long adaptation histories with
// moving hot spots.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "loadbalance/workload_index.h"

namespace geogrid::loadbalance {
namespace {

class AdaptationProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  core::SimulationOptions options() const {
    core::SimulationOptions opt;
    opt.mode = core::GridMode::kDualPeerAdaptive;
    opt.node_count = 250;
    opt.seed = GetParam();
    opt.field.cells_x = 128;
    opt.field.cells_y = 128;
    return opt;
  }
};

TEST_P(AdaptationProperties, StepsNeverWorsenTouchedNodes) {
  core::GridSimulation sim(options());
  const auto load = sim.load_fn();

  for (int step = 0; step < 120; ++step) {
    // Pre-compute the indexes of every node (cheap at this scale).
    overlay::Partition& p = sim.partition();

    // Snapshot owner indexes before the step.
    std::unordered_map<NodeId, double> before;
    for (const auto& [id, info] : p.nodes()) {
      before[id] = node_index(p, load, id);
    }

    const auto plan = sim.driver().step();
    if (!plan) break;

    // Owners of the touched regions after execution.
    std::vector<NodeId> touched;
    for (const RegionId rid : {plan->subject, plan->partner}) {
      if (!rid.valid() || !p.has_region(rid)) continue;
      touched.push_back(p.region(rid).primary);
      if (p.region(rid).secondary) touched.push_back(*p.region(rid).secondary);
    }
    ASSERT_FALSE(touched.empty());
    double before_max = 0.0;
    double after_max = 0.0;
    for (const NodeId n : touched) {
      if (auto it = before.find(n); it != before.end()) {
        before_max = std::max(before_max, it->second);
      }
      after_max = std::max(after_max, node_index(p, load, n));
    }
    EXPECT_LE(after_max, before_max + 1e-9)
        << "mechanism " << mechanism_name(plan->mechanism) << " at step "
        << step;
    ASSERT_TRUE(p.validate_fast().empty());
  }
}

TEST_P(AdaptationProperties, LongHistoriesWithMovingHotspotsStaySound) {
  core::GridSimulation sim(options());
  for (int round = 0; round < 30; ++round) {
    sim.migrate_hotspots(1 + static_cast<std::size_t>(round % 4));
    sim.driver().run_round();
    ASSERT_TRUE(sim.partition().validate_fast().empty()) << round;
  }
  EXPECT_TRUE(sim.partition().validate().empty());
}

TEST_P(AdaptationProperties, ConvergedSystemsStayConverged) {
  core::GridSimulation sim(options());
  for (int i = 0; i < 25; ++i) {
    if (sim.driver().run_round().executed == 0) break;
  }
  const Summary converged = sim.workload_summary();
  // With static hot spots, further rounds change nothing.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sim.driver().run_round().executed, 0u);
  }
  const Summary still = sim.workload_summary();
  EXPECT_DOUBLE_EQ(converged.stddev, still.stddev);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptationProperties,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace geogrid::loadbalance
