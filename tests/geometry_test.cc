// Region algebra: the paper's cover test, edge adjacency, split/merge.
#include "common/geometry.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace geogrid {
namespace {

TEST(Point, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance({-1, 0}, {2, 4}), 5.0);
}

TEST(Rect, Accessors) {
  const Rect r{2, 3, 10, 4};
  EXPECT_DOUBLE_EQ(r.right(), 12.0);
  EXPECT_DOUBLE_EQ(r.top(), 7.0);
  EXPECT_DOUBLE_EQ(r.area(), 40.0);
  EXPECT_EQ(r.center(), (Point{7, 5}));
}

// The paper's cover test is half-open: strictly greater than the southwest
// corner, less-or-equal the northeast corner.
TEST(Rect, CoverIsHalfOpen) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.covers({5, 5}));
  EXPECT_TRUE(r.covers({10, 10}));     // northeast corner included
  EXPECT_FALSE(r.covers({0, 5}));      // west edge excluded
  EXPECT_FALSE(r.covers({5, 0}));      // south edge excluded
  EXPECT_FALSE(r.covers({0, 0}));      // southwest corner excluded
  EXPECT_TRUE(r.covers({10, 0.001}));  // east edge included
  EXPECT_FALSE(r.covers({10.001, 5}));
}

// A point on a shared edge belongs to exactly one of the two regions.
TEST(Rect, SharedEdgePointCoveredExactlyOnce) {
  const Rect west{0, 0, 5, 10};
  const Rect east{5, 0, 5, 10};
  const Point on_edge{5, 3};
  EXPECT_TRUE(west.covers(on_edge));
  EXPECT_FALSE(east.covers(on_edge));
}

TEST(Rect, CoversInclusiveAcceptsPlaneBorder) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.covers_inclusive({0, 0}));
  EXPECT_TRUE(r.covers_inclusive({0, 5}));
  EXPECT_FALSE(r.covers_inclusive({-0.001, 5}));
}

TEST(Rect, Intersects) {
  const Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.intersects({5, 5, 10, 10}));
  EXPECT_FALSE(a.intersects({10, 0, 5, 10}));  // touching edge: no area
  EXPECT_FALSE(a.intersects({11, 11, 2, 2}));
  EXPECT_TRUE(a.intersects({-1, -1, 2, 2}));
}

TEST(Rect, IntersectionGeometry) {
  const Rect a{0, 0, 10, 10};
  const auto i = a.intersection({5, 5, 10, 10});
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(*i, (Rect{5, 5, 5, 5}));
  EXPECT_FALSE(a.intersection({10, 0, 5, 10}).has_value());
}

// "Two regions are considered neighbors when their intersection is a line
// segment."
TEST(Rect, EdgeAdjacency) {
  const Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.edge_adjacent({10, 0, 5, 10}));   // full shared east edge
  EXPECT_TRUE(a.edge_adjacent({10, 5, 5, 10}));   // partial shared edge
  EXPECT_TRUE(a.edge_adjacent({0, 10, 10, 5}));   // shared north edge
  EXPECT_FALSE(a.edge_adjacent({10, 10, 5, 5}));  // corner touch only
  EXPECT_FALSE(a.edge_adjacent({11, 0, 5, 10}));  // gap
  EXPECT_FALSE(a.edge_adjacent({2, 2, 4, 4}));    // containment
}

TEST(Rect, SplitHalvesExactly) {
  const Rect r{0, 0, 64, 64};
  const auto [low_y, high_y] = r.split(Axis::kY);
  EXPECT_EQ(low_y, (Rect{0, 0, 64, 32}));
  EXPECT_EQ(high_y, (Rect{0, 32, 64, 32}));
  const auto [low_x, high_x] = r.split(Axis::kX);
  EXPECT_EQ(low_x, (Rect{0, 0, 32, 64}));
  EXPECT_EQ(high_x, (Rect{32, 0, 32, 64}));
}

TEST(Rect, SplitConservesAreaAndAdjacency) {
  const Rect r{3, 7, 10, 6};
  for (const Axis axis : {Axis::kX, Axis::kY}) {
    const auto [low, high] = r.split(axis);
    EXPECT_DOUBLE_EQ(low.area() + high.area(), r.area());
    EXPECT_TRUE(low.edge_adjacent(high));
    EXPECT_FALSE(low.intersects(high));
  }
}

TEST(Rect, MergeIsInverseOfSplit) {
  const Rect r{0, 16, 32, 16};
  for (const Axis axis : {Axis::kX, Axis::kY}) {
    const auto [low, high] = r.split(axis);
    EXPECT_TRUE(low.mergeable(high));
    EXPECT_TRUE(high.mergeable(low));
    EXPECT_EQ(low.merged(high), r);
    EXPECT_EQ(high.merged(low), r);
  }
}

TEST(Rect, MergeableRequiresRectangularUnion) {
  const Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.mergeable({10, 0, 10, 10}));
  EXPECT_TRUE(a.mergeable({0, 10, 10, 4}));
  EXPECT_FALSE(a.mergeable({10, 0, 10, 5}));   // different heights
  EXPECT_FALSE(a.mergeable({10, 2, 10, 10}));  // offset
  EXPECT_FALSE(a.mergeable({11, 0, 10, 10}));  // gap
  EXPECT_FALSE(a.mergeable({10, 10, 10, 10})); // diagonal
}

TEST(Rect, DistanceToPoint) {
  const Rect r{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(r.distance_to({5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(r.distance_to({15, 5}), 5.0);
  EXPECT_DOUBLE_EQ(r.distance_to({13, 14}), 5.0);  // corner: 3-4-5
  EXPECT_DOUBLE_EQ(r.distance_to({-3, -4}), 5.0);
}

TEST(Rect, ClampPoint) {
  const Rect r{0, 0, 10, 10};
  EXPECT_EQ(r.clamp({15, -3}), (Point{10, 0}));
  EXPECT_EQ(r.clamp({4, 5}), (Point{4, 5}));
}

TEST(Axis, SplitAxisAlternatesWithDepth) {
  using geogrid::opposite;
  EXPECT_EQ(opposite(Axis::kX), Axis::kY);
  EXPECT_EQ(opposite(Axis::kY), Axis::kX);
}

// Property: repeated splits tile the original rectangle exactly; every
// random point is covered by exactly one tile.
TEST(RectProperty, RecursiveSplitTilesPlane) {
  Rng rng(2024);
  std::vector<Rect> tiles{Rect{0, 0, 64, 64}};
  for (int depth = 0; depth < 6; ++depth) {
    std::vector<Rect> next;
    for (const Rect& t : tiles) {
      const auto [low, high] =
          t.split(depth % 2 == 0 ? Axis::kY : Axis::kX);
      next.push_back(low);
      next.push_back(high);
    }
    tiles = std::move(next);
  }
  double area = 0.0;
  for (const Rect& t : tiles) area += t.area();
  EXPECT_NEAR(area, 64.0 * 64.0, 1e-9);

  for (int i = 0; i < 500; ++i) {
    const Point p{rng.uniform(1e-9, 64.0), rng.uniform(1e-9, 64.0)};
    int covered = 0;
    for (const Rect& t : tiles) covered += t.covers(p) ? 1 : 0;
    EXPECT_EQ(covered, 1) << "point " << p.x << ',' << p.y;
  }
}

// Property: for random adjacent pairs produced by splitting, adjacency is
// symmetric and merge commutes.
TEST(RectProperty, AdjacencySymmetric) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Rect r{rng.uniform(0, 10), rng.uniform(0, 10),
                 rng.uniform(1, 20), rng.uniform(1, 20)};
    const Rect s{rng.uniform(0, 10), rng.uniform(0, 10),
                 rng.uniform(1, 20), rng.uniform(1, 20)};
    EXPECT_EQ(r.edge_adjacent(s), s.edge_adjacent(r));
    EXPECT_EQ(r.mergeable(s), s.mergeable(r));
    EXPECT_EQ(r.intersects(s), s.intersects(r));
  }
}

}  // namespace
}  // namespace geogrid
