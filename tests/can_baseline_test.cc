// CAN-style random-split baseline: structural soundness plus the property
// GeoGrid's geographic mapping is designed to provide and CAN lacks —
// owners living inside (or next to) the regions they serve.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "overlay/basic_ops.h"

namespace geogrid::core {
namespace {

SimulationOptions can_options(std::size_t nodes, std::uint64_t seed) {
  SimulationOptions opt;
  opt.mode = GridMode::kCanBaseline;
  opt.node_count = nodes;
  opt.seed = seed;
  opt.field.cells_x = 64;
  opt.field.cells_y = 64;
  return opt;
}

TEST(CanBaseline, BuildsValidPartition) {
  GridSimulation sim(can_options(300, 1));
  EXPECT_EQ(sim.partition().region_count(), 300u);
  EXPECT_TRUE(sim.partition().validate().empty());
}

TEST(CanBaseline, ChurnKeepsInvariants) {
  GridSimulation sim(can_options(100, 2));
  Rng rng(3);
  std::vector<NodeId> alive;
  for (const auto& [id, info] : sim.partition().nodes()) alive.push_back(id);
  for (int step = 0; step < 150; ++step) {
    if (alive.size() < 4 || rng.chance(0.6)) {
      alive.push_back(sim.add_node());
    } else {
      const auto idx = rng.uniform_index(alive.size());
      sim.remove_node(alive[idx], rng.chance(0.5));
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_TRUE(sim.partition().validate_fast().empty());
  }
  EXPECT_TRUE(sim.partition().validate().empty());
}

TEST(CanBaseline, OwnersAreScatteredGeoGridOwnersAreNot) {
  GridSimulation can(can_options(400, 4));
  SimulationOptions geo_opt = can_options(400, 4);
  geo_opt.mode = GridMode::kBasic;
  GridSimulation geo(geo_opt);

  const auto displacement = [](const overlay::Partition& p) {
    RunningStats d;
    for (const auto& [rid, r] : p.regions()) {
      d.add(p.region(rid).rect.distance_to(p.node(r.primary).coord));
    }
    return d.mean();
  };
  // GeoGrid owners sit inside or immediately next to their regions (same-
  // half splits can displace a node into the adjacent rectangle); CAN
  // owners are assigned rectangles with no relation to where they are.
  EXPECT_LT(displacement(geo.partition()), 3.0);
  EXPECT_GT(displacement(can.partition()), 5.0);
  EXPECT_GT(displacement(can.partition()),
            displacement(geo.partition()) * 3.0);
}

TEST(CanBaseline, RoutingStillWorks) {
  GridSimulation sim(can_options(200, 5));
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const Point target{rng.uniform(0.01, 64.0), rng.uniform(0.01, 64.0)};
    const RegionId from = sim.partition().locate(
        Point{rng.uniform(0.01, 64.0), rng.uniform(0.01, 64.0)});
    const auto route = overlay::route_greedy(sim.partition(), from, target);
    EXPECT_TRUE(route.reached);
  }
}

}  // namespace
}  // namespace geogrid::core
