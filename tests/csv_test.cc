#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace geogrid {
namespace {

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"n", "mean", "stddev"});
  csv.row(1000, 0.5, 0.25);
  EXPECT_EQ(out.str(), "n,mean,stddev\n1000,0.5,0.25\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("plain", "with,comma", "with\"quote", "with\nnewline");
  EXPECT_EQ(out.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvWriter, MixedFieldTypes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(42, 2.5, "x", true);
  EXPECT_EQ(out.str(), "42,2.5,x,1\n");
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/zzz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace geogrid
