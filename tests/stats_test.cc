// RunningStats: Welford accumulation, merging, percentiles.
#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace geogrid {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 0.0);
  EXPECT_DOUBLE_EQ(rs.max(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(v);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Summarize, SpanOverload) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 17.5);
}

TEST(Percentile, HandlesEmptyAndClamped) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 200), 5.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 7.0}, -10), 5.0);
}

}  // namespace
}  // namespace geogrid
