// Partition mechanics: split/merge bookkeeping, ownership indexes,
// adjacency maintenance, invariant checking.
#include "overlay/partition.h"

#include <gtest/gtest.h>

namespace geogrid::overlay {
namespace {

const Rect kPlane{0, 0, 64, 64};

net::NodeInfo make_node(std::uint32_t id, double x, double y,
                        double capacity = 10.0) {
  net::NodeInfo n;
  n.id = NodeId{id};
  n.coord = Point{x, y};
  n.capacity = capacity;
  return n;
}

class PartitionTest : public ::testing::Test {
 protected:
  Partition p{kPlane};

  void expect_valid() {
    const auto errors = p.validate();
    EXPECT_TRUE(errors.empty()) << errors.front();
  }
};

TEST_F(PartitionTest, RootCoversWholePlane) {
  p.add_node(make_node(1, 10, 10));
  const RegionId root = p.create_root(NodeId{1});
  EXPECT_EQ(p.region(root).rect, kPlane);
  EXPECT_EQ(p.region(root).primary, (NodeId{1}));
  EXPECT_EQ(p.region_count(), 1u);
  EXPECT_TRUE(p.neighbors(root).empty());
  expect_valid();
}

TEST_F(PartitionTest, FirstSplitIsLatitude) {
  p.add_node(make_node(1, 10, 10));
  p.add_node(make_node(2, 10, 50));
  const RegionId root = p.create_root(NodeId{1});
  const RegionId high = p.split(root, NodeId{2});
  // Depth 0 splits the Y (latitude) dimension; owner at y=10 keeps the low
  // half.
  EXPECT_EQ(p.region(root).rect, (Rect{0, 0, 64, 32}));
  EXPECT_EQ(p.region(high).rect, (Rect{0, 32, 64, 32}));
  EXPECT_EQ(p.region(root).split_depth, 1);
  EXPECT_EQ(p.region(high).split_depth, 1);
  expect_valid();
}

TEST_F(PartitionTest, SecondSplitIsLongitude) {
  p.add_node(make_node(1, 10, 10));
  p.add_node(make_node(2, 10, 50));
  p.add_node(make_node(3, 50, 10));
  const RegionId root = p.create_root(NodeId{1});
  p.split(root, NodeId{2});
  const RegionId east = p.split(root, NodeId{3});
  EXPECT_EQ(p.region(root).rect, (Rect{0, 0, 32, 32}));
  EXPECT_EQ(p.region(east).rect, (Rect{32, 0, 32, 32}));
  expect_valid();
}

TEST_F(PartitionTest, SplitKeepsOwnerCoveringHalf) {
  p.add_node(make_node(1, 10, 50));  // owner in the NORTH half
  p.add_node(make_node(2, 10, 10));
  const RegionId root = p.create_root(NodeId{1});
  const RegionId other = p.split(root, NodeId{2});
  EXPECT_TRUE(p.region(root).rect.covers(Point{10, 50}));
  EXPECT_EQ(p.region(other).rect, (Rect{0, 0, 64, 32}));
}

TEST_F(PartitionTest, AdjacencyAfterSplits) {
  p.add_node(make_node(1, 10, 10));
  p.add_node(make_node(2, 10, 50));
  p.add_node(make_node(3, 50, 10));
  const RegionId a = p.create_root(NodeId{1});
  const RegionId b = p.split(a, NodeId{2});
  const RegionId c = p.split(a, NodeId{3});
  // a=<0,0,32,32>, c=<32,0,32,32>, b=<0,32,64,32>: all three pairwise
  // adjacent.
  EXPECT_EQ(p.neighbors(a).size(), 2u);
  EXPECT_EQ(p.neighbors(b).size(), 2u);
  EXPECT_EQ(p.neighbors(c).size(), 2u);
  expect_valid();
}

TEST_F(PartitionTest, MergeRestoresRectangle) {
  p.add_node(make_node(1, 10, 10));
  p.add_node(make_node(2, 10, 50));
  const RegionId a = p.create_root(NodeId{1});
  const RegionId b = p.split(a, NodeId{2});
  p.merge(a, b);
  EXPECT_EQ(p.region_count(), 1u);
  EXPECT_EQ(p.region(a).rect, kPlane);
  EXPECT_TRUE(p.primary_regions(NodeId{2}).empty());
  expect_valid();
}

TEST_F(PartitionTest, OwnershipIndexTracksSeats) {
  p.add_node(make_node(1, 10, 10));
  p.add_node(make_node(2, 50, 50));
  const RegionId root = p.create_root(NodeId{1});
  EXPECT_EQ(p.primary_regions(NodeId{1}).size(), 1u);
  p.set_secondary(root, NodeId{2});
  EXPECT_EQ(p.secondary_regions(NodeId{2}).size(), 1u);
  EXPECT_TRUE(p.region(root).full());
  p.swap_roles(root);
  EXPECT_EQ(p.region(root).primary, (NodeId{2}));
  EXPECT_EQ(*p.region(root).secondary, (NodeId{1}));
  EXPECT_EQ(p.primary_regions(NodeId{2}).size(), 1u);
  EXPECT_EQ(p.secondary_regions(NodeId{1}).size(), 1u);
  p.clear_secondary(root);
  EXPECT_FALSE(p.region(root).full());
  EXPECT_TRUE(p.secondary_regions(NodeId{1}).empty());
  expect_valid();
}

TEST_F(PartitionTest, SwapPrimariesBetweenRegions) {
  p.add_node(make_node(1, 10, 10));
  p.add_node(make_node(2, 10, 50));
  const RegionId a = p.create_root(NodeId{1});
  const RegionId b = p.split(a, NodeId{2});
  p.swap_primaries(a, b);
  EXPECT_EQ(p.region(a).primary, (NodeId{2}));
  EXPECT_EQ(p.region(b).primary, (NodeId{1}));
  expect_valid();
}

TEST_F(PartitionTest, SwapPrimaryWithSecondary) {
  p.add_node(make_node(1, 10, 10));
  p.add_node(make_node(2, 10, 50));
  p.add_node(make_node(3, 20, 50));
  const RegionId a = p.create_root(NodeId{1});
  const RegionId b = p.split(a, NodeId{2});
  p.set_secondary(b, NodeId{3});
  p.swap_primary_with_secondary(a, b);
  EXPECT_EQ(p.region(a).primary, (NodeId{3}));
  EXPECT_EQ(*p.region(b).secondary, (NodeId{1}));
  EXPECT_EQ(p.region(b).primary, (NodeId{2}));
  expect_valid();
}

TEST_F(PartitionTest, LocateFindsCoveringRegion) {
  p.add_node(make_node(1, 10, 10));
  p.add_node(make_node(2, 10, 50));
  p.add_node(make_node(3, 50, 10));
  const RegionId a = p.create_root(NodeId{1});
  const RegionId b = p.split(a, NodeId{2});
  const RegionId c = p.split(a, NodeId{3});
  EXPECT_EQ(p.locate({5, 5}), a);
  EXPECT_EQ(p.locate({5, 60}), b);
  EXPECT_EQ(p.locate({60, 5}), c);
  EXPECT_EQ(p.locate({60, 5}, b), c);  // hint works too
}

TEST_F(PartitionTest, RetireLastRegion) {
  p.add_node(make_node(1, 10, 10));
  const RegionId root = p.create_root(NodeId{1});
  p.retire_last_region(root);
  EXPECT_EQ(p.region_count(), 0u);
  EXPECT_TRUE(p.primary_regions(NodeId{1}).empty());
  p.remove_node(NodeId{1});
  EXPECT_EQ(p.node_count(), 0u);
}

TEST_F(PartitionTest, ValidateDetectsMissingPrimaryIndex) {
  // validate() on a healthy partition reports nothing.
  p.add_node(make_node(1, 10, 10));
  p.create_root(NodeId{1});
  EXPECT_TRUE(p.validate().empty());
}

TEST_F(PartitionTest, AllocateNodeIdAvoidsCollisions) {
  p.add_node(make_node(5, 1, 1));
  const NodeId fresh = p.allocate_node_id();
  EXPECT_GT(fresh.value, 5u);
}

}  // namespace
}  // namespace geogrid::overlay
