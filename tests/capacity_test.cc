// Gnutella-style capacity distribution.
#include "workload/capacity.h"

#include <gtest/gtest.h>

#include <map>

namespace geogrid::workload {
namespace {

TEST(Capacity, GnutellaTiersNormalized) {
  const auto dist = CapacityDistribution::gnutella();
  ASSERT_EQ(dist.tiers().size(), 5u);
  double total = 0.0;
  for (const auto& t : dist.tiers()) total += t.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Five decades of capacity.
  EXPECT_DOUBLE_EQ(dist.tiers().front().capacity, 1.0);
  EXPECT_DOUBLE_EQ(dist.tiers().back().capacity, 10000.0);
}

TEST(Capacity, GnutellaMean) {
  const auto dist = CapacityDistribution::gnutella();
  // 0.2*1 + 0.45*10 + 0.30*100 + 0.049*1000 + 0.001*10000 = 93.7
  EXPECT_NEAR(dist.mean(), 93.7, 1e-9);
}

TEST(Capacity, SamplingMatchesMasses) {
  const auto dist = CapacityDistribution::gnutella();
  Rng rng(42);
  std::map<double, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[dist.sample(rng)]++;
  EXPECT_NEAR(counts[1.0] / double(n), 0.20, 0.01);
  EXPECT_NEAR(counts[10.0] / double(n), 0.45, 0.01);
  EXPECT_NEAR(counts[100.0] / double(n), 0.30, 0.01);
  EXPECT_NEAR(counts[1000.0] / double(n), 0.049, 0.005);
  EXPECT_NEAR(counts[10000.0] / double(n), 0.001, 0.001);
}

TEST(Capacity, HomogeneousAlwaysSame) {
  const auto dist = CapacityDistribution::homogeneous(7.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(dist.sample(rng), 7.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 7.0);
}

TEST(Capacity, CustomTiersNormalizedFromRawWeights) {
  CapacityDistribution dist({{1.0, 3.0}, {2.0, 1.0}});  // raw weights 3:1
  EXPECT_NEAR(dist.tiers()[0].probability, 0.75, 1e-12);
  EXPECT_NEAR(dist.tiers()[1].probability, 0.25, 1e-12);
  EXPECT_NEAR(dist.mean(), 1.25, 1e-12);
}

TEST(Capacity, SkewIsHeavy) {
  // The distribution spans four orders of magnitude between the weakest
  // and the strongest realistic peer — the heterogeneity GeoGrid's load
  // balancing is designed for.
  const auto dist = CapacityDistribution::gnutella();
  const double weakest = dist.tiers().front().capacity;
  const double strongest = dist.tiers().back().capacity;
  EXPECT_GE(strongest / weakest, 1e4);
}

}  // namespace
}  // namespace geogrid::workload
