#include "services/geolocator.h"

#include <gtest/gtest.h>

namespace geogrid::services {
namespace {

const Rect kPlane{0, 0, 64, 64};

TEST(Geolocator, PerfectGpsReturnsTruth) {
  Geolocator geo(kPlane, {.max_error_miles = 0.0}, Rng(1));
  EXPECT_EQ(geo.locate({10, 20}), (Point{10, 20}));
}

TEST(Geolocator, ErrorStaysWithinRadius) {
  Geolocator geo(kPlane, {.max_error_miles = 5.0}, Rng(2));
  const Point truth{32, 32};
  for (int i = 0; i < 1000; ++i) {
    const Point reported = geo.locate(truth);
    EXPECT_LE(distance(truth, reported), 5.0 + 1e-9);
  }
}

TEST(Geolocator, ReportedPositionsClampToPlane) {
  Geolocator geo(kPlane, {.max_error_miles = 50.0}, Rng(3));
  const Point corner{0.5, 0.5};
  for (int i = 0; i < 1000; ++i) {
    const Point p = geo.locate(corner);
    EXPECT_GE(p.x, 0.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.x, 64.0);
    EXPECT_LE(p.y, 64.0);
  }
}

TEST(Geolocator, RandomPositionsCoverPlaneInterior) {
  Geolocator geo(kPlane, {}, Rng(4));
  bool west = false, east = false, south = false, north = false;
  for (int i = 0; i < 1000; ++i) {
    const Point p = geo.random_position();
    EXPECT_GT(p.x, 0.0);
    EXPECT_GT(p.y, 0.0);
    EXPECT_LE(p.x, 64.0);
    EXPECT_LE(p.y, 64.0);
    west |= p.x < 16;
    east |= p.x > 48;
    south |= p.y < 16;
    north |= p.y > 48;
  }
  EXPECT_TRUE(west && east && south && north);
}

TEST(Geolocator, ErrorActuallyPerturbs) {
  Geolocator geo(kPlane, {.max_error_miles = 5.0}, Rng(5));
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    if (distance(geo.locate({32, 32}), {32, 32}) > 0.01) ++moved;
  }
  EXPECT_GT(moved, 90);
}

}  // namespace
}  // namespace geogrid::services
