// Bootstrap directory and host cache.
#include "services/bootstrap.h"

#include <gtest/gtest.h>

namespace geogrid::services {
namespace {

net::NodeInfo make_node(std::uint32_t id) {
  net::NodeInfo n;
  n.id = NodeId{id};
  n.coord = Point{static_cast<double>(id), 1.0};
  n.capacity = 10.0;
  return n;
}

struct Sink : sim::Process {
  std::optional<net::BootstrapEntryReply> reply;
  void on_message(NodeId, const net::Message& msg) override {
    if (const auto* r = std::get_if<net::BootstrapEntryReply>(&msg)) {
      reply = *r;
    }
  }
};

class BootstrapTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  sim::Network net{loop, Rng(1)};
  BootstrapServer server{net, NodeId{0}, Rng(2)};
};

TEST_F(BootstrapTest, FirstNodeGetsNoEntry) {
  Sink joiner;
  net.attach(NodeId{1}, joiner, Point{1, 1});
  net.send(NodeId{1}, NodeId{0}, net::BootstrapEntryRequest{make_node(1)});
  loop.run();
  ASSERT_TRUE(joiner.reply.has_value());
  EXPECT_FALSE(joiner.reply->entry.has_value());
}

TEST_F(BootstrapTest, RegisteredNodesServeAsEntries) {
  Sink joiner;
  net.attach(NodeId{1}, joiner, Point{1, 1});
  net.send(NodeId{1}, NodeId{0}, net::BootstrapRegister{make_node(7)});
  loop.run();  // registration lands before the request (no reordering)
  net.send(NodeId{1}, NodeId{0}, net::BootstrapEntryRequest{make_node(1)});
  loop.run();
  ASSERT_TRUE(joiner.reply.has_value());
  ASSERT_TRUE(joiner.reply->entry.has_value());
  EXPECT_EQ(joiner.reply->entry->id, (NodeId{7}));
}

TEST_F(BootstrapTest, NeverReturnsRequesterItself) {
  server.pick_entry(NodeId{1});  // direct API
  Sink joiner;
  net.attach(NodeId{1}, joiner, Point{1, 1});
  net.send(NodeId{1}, NodeId{0}, net::BootstrapRegister{make_node(1)});
  net.send(NodeId{1}, NodeId{0}, net::BootstrapRegister{make_node(2)});
  loop.run();
  for (int i = 0; i < 50; ++i) {
    const auto entry = server.pick_entry(NodeId{1});
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->id, (NodeId{2}));
  }
}

TEST_F(BootstrapTest, OnlySelfRegisteredMeansNoEntry) {
  Sink joiner;
  net.attach(NodeId{1}, joiner, Point{1, 1});
  net.send(NodeId{1}, NodeId{0}, net::BootstrapRegister{make_node(1)});
  net.send(NodeId{1}, NodeId{0}, net::BootstrapEntryRequest{make_node(1)});
  loop.run();
  ASSERT_TRUE(joiner.reply.has_value());
  EXPECT_FALSE(joiner.reply->entry.has_value());
}

TEST_F(BootstrapTest, UnregisterRemovesNode) {
  Sink sender;
  net.attach(NodeId{9}, sender, Point{2, 2});
  for (std::uint32_t i = 1; i <= 3; ++i) {
    net.send(NodeId{9}, NodeId{0}, net::BootstrapRegister{make_node(i)});
  }
  loop.run();
  EXPECT_EQ(server.registered(), 3u);
  server.unregister(NodeId{2});
  EXPECT_EQ(server.registered(), 2u);
  for (int i = 0; i < 50; ++i) {
    const auto entry = server.pick_entry(kInvalidNode);
    ASSERT_TRUE(entry.has_value());
    EXPECT_NE(entry->id, (NodeId{2}));
  }
}

TEST(HostCache, RemembersAndEvictsFifo) {
  HostCache cache(2);
  cache.remember(make_node(1));
  cache.remember(make_node(2));
  cache.remember(make_node(3));  // evicts node 1
  EXPECT_EQ(cache.size(), 2u);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto pick = cache.pick(rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_NE(pick->id, (NodeId{1}));
  }
}

TEST(HostCache, RememberUpdatesInPlace) {
  HostCache cache(4);
  cache.remember(make_node(1));
  auto updated = make_node(1);
  updated.capacity = 99.0;
  cache.remember(updated);
  EXPECT_EQ(cache.size(), 1u);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(cache.pick(rng)->capacity, 99.0);
}

TEST(HostCache, ForgetAndEmpty) {
  HostCache cache;
  EXPECT_TRUE(cache.empty());
  Rng rng(1);
  EXPECT_FALSE(cache.pick(rng).has_value());
  cache.remember(make_node(5));
  cache.forget(NodeId{5});
  EXPECT_TRUE(cache.empty());
}

}  // namespace
}  // namespace geogrid::services
