// Adaptation under fire: the full mechanism x fault matrix driven through
// the live mobile-user path (sim::AdaptationHarness).
//
// Every case runs migrating hot spots over live sharded ingest, batched
// queries and standing subscriptions while the scheduled adaptation events
// fire exactly one load-balance mechanism (and, per fault, a region kill,
// delayed+replayed handoff slices, or dropped migration transfers).  The
// harness itself asserts nothing; the cases here pin its report:
//
//   * zero lost users and zero record-parity failures against the
//     never-adapted reference directory,
//   * byte-identical canonicalized query results versus that reference,
//   * byte-identical notification streams (continuity across failover)
//     and zero duplicate notifications,
//   * migrated-vs-rebuilt snapshot byte equality after every adaptation,
//   * the targeted mechanism actually executed (the matrix is not
//     vacuous), with per-fault activity counters proving the fault fired.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <tuple>

#include "core/engine.h"
#include "sim/adaptation_harness.h"

namespace geogrid::sim {
namespace {

using loadbalance::Mechanism;

// Per-mechanism workload seeds under which the 200-node fixture reliably
// triggers that mechanism at the scheduled events (found by sweeping; the
// planner only fires a mechanism when its preconditions hold, so a single
// shared seed cannot cover all eight).
constexpr std::array<std::uint64_t, loadbalance::kMechanismCount> kSeeds = {
    1, 1, 17, 1, 2, 1, 2, 1};

core::GridSimulation make_sim(std::uint64_t seed) {
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeerAdaptive;
  opt.node_count = 200;
  opt.seed = 1000 + seed;
  opt.field.cells_x = 128;
  opt.field.cells_y = 128;
  return core::GridSimulation(opt);
}

AdaptationHarness::Options harness_options(std::uint64_t seed) {
  AdaptationHarness::Options ho;
  ho.users = 400;
  ho.ticks = 10;
  ho.event_ticks = {3, 6};
  ho.during_window = 1;
  ho.seed = seed;
  ho.queries_per_tick = 30;
  ho.subscriptions = 30;
  ho.report_rate = 0.7;  // silent users exercise the migration-delta path
  return ho;
}

void expect_clean(const AdaptationHarness::Report& r) {
  EXPECT_EQ(r.lost_users, 0u);
  EXPECT_EQ(r.record_parity_failures, 0u);
  EXPECT_EQ(r.query_divergences, 0u);
  EXPECT_EQ(r.notify_divergences, 0u);
  EXPECT_EQ(r.duplicate_notifications, 0u);
  EXPECT_EQ(r.migration_verify_failures, 0u);
  EXPECT_TRUE(r.clean());
}

class MechanismFaultMatrix
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MechanismFaultMatrix, SafeUnderLiveLoad) {
  const auto mech = static_cast<std::size_t>(std::get<0>(GetParam()));
  const auto fault = static_cast<FaultKind>(std::get<1>(GetParam()));

  core::GridSimulation sim = make_sim(kSeeds[mech]);
  AdaptationHarness::Options ho = harness_options(kSeeds[mech]);
  ho.planner.enabled = {};
  ho.planner.enabled[mech] = true;
  ho.fault = fault;

  AdaptationHarness harness(sim.partition(), sim.field(), ho);
  const AdaptationHarness::Report r = harness.run();

  expect_clean(r);
  ASSERT_TRUE(sim.partition().validate_fast().empty());

  // The matrix cell is not vacuous: the targeted mechanism (and only it)
  // executed at the scheduled events.
  EXPECT_GE(r.adaptations_executed, 1u)
      << "mechanism " << loadbalance::mechanism_name(
             static_cast<Mechanism>(mech));
  EXPECT_EQ(r.per_mechanism[mech], r.adaptations_executed);

  // The fault actually happened.
  switch (fault) {
    case FaultKind::kNone:
      break;
    case FaultKind::kRegionKill:
      EXPECT_EQ(r.failovers, ho.event_ticks.size());
      // Killing a solo primary retires its region, so records migrated.
      EXPECT_GT(r.migrated_records, 0u);
      break;
    case FaultKind::kDelayedHandoff:
      EXPECT_GT(r.delayed_updates, 0u);
      EXPECT_GT(r.replayed_updates, 0u);
      // Every replayed record must be rejected by the seq guard.
      EXPECT_EQ(r.replays_rejected, r.replayed_updates);
      break;
    case FaultKind::kDroppedTransfer:
      // Drops only occur when the adaptation moved geometry; when they
      // occurred, the retry loop must have run extra passes and finished.
      if (r.dropped_transfers > 0) {
        EXPECT_GE(r.migration_retries, 1u);
      }
      break;
  }

  // Latency phases were all exercised.
  EXPECT_GT(r.before.update.count(), 0u);
  EXPECT_GT(r.during.update.count(), 0u);
  EXPECT_GT(r.after.update.count(), 0u);
  EXPECT_GT(r.during.query.count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MechanismFaultMatrix,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& param) {
      const auto m = static_cast<Mechanism>(std::get<0>(param.param));
      const auto f = static_cast<FaultKind>(std::get<1>(param.param));
      std::string name(loadbalance::mechanism_name(m));
      name += "_";
      name += fault_name(f);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(AdaptationUnderFire, AllMechanismsTogetherStayClean) {
  core::GridSimulation sim = make_sim(3);
  AdaptationHarness::Options ho = harness_options(3);
  ho.ops_per_event = 6;
  AdaptationHarness harness(sim.partition(), sim.field(), ho);
  const auto r = harness.run();
  expect_clean(r);
  EXPECT_GE(r.adaptations_executed, 2u);
  EXPECT_TRUE(sim.partition().validate().empty());
}

TEST(AdaptationUnderFire, FailoverAloneKeepsNotificationContinuity) {
  // Dual-peer failover without the planner: the secondary takes over (or
  // the region merges away) while updates, queries and notifications flow.
  for (const FaultKind fault : {FaultKind::kNone, FaultKind::kRegionKill}) {
    core::GridSimulation sim = make_sim(5);
    AdaptationHarness::Options ho = harness_options(5);
    ho.use_driver = false;
    ho.failover = true;
    ho.fault = fault;
    AdaptationHarness harness(sim.partition(), sim.field(), ho);
    const auto r = harness.run();
    expect_clean(r);
    EXPECT_EQ(r.failovers, ho.event_ticks.size());
    EXPECT_EQ(r.adaptations_executed, 0u);
    ASSERT_TRUE(sim.partition().validate_fast().empty());
  }
}

TEST(AdaptationUnderFire, ReportIsShardAndThreadCountInvariant) {
  // The harness's deterministic spine — workload, adaptation decisions,
  // migration, query answers, notification streams — must not depend on
  // how the live directory is sharded or how many threads run queries and
  // matching.  Latency histograms differ; everything counted does not.
  AdaptationHarness::Report reports[2];
  const std::size_t shard_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    core::GridSimulation sim = make_sim(kSeeds[3]);
    AdaptationHarness::Options ho = harness_options(kSeeds[3]);
    ho.planner.enabled = {};
    ho.planner.enabled[static_cast<std::size_t>(Mechanism::kSplitRegion)] =
        true;
    ho.fault = FaultKind::kDroppedTransfer;
    ho.ingest_shards = shard_counts[i];
    ho.query_threads = shard_counts[i];
    ho.notify_threads = shard_counts[i];
    AdaptationHarness harness(sim.partition(), sim.field(), ho);
    reports[i] = harness.run();
    expect_clean(reports[i]);
  }
  EXPECT_EQ(reports[0].updates_sent, reports[1].updates_sent);
  EXPECT_EQ(reports[0].adaptations_executed, reports[1].adaptations_executed);
  EXPECT_EQ(reports[0].per_mechanism, reports[1].per_mechanism);
  EXPECT_EQ(reports[0].geometry_changes, reports[1].geometry_changes);
  EXPECT_EQ(reports[0].migrated_records, reports[1].migrated_records);
  EXPECT_EQ(reports[0].dropped_transfers, reports[1].dropped_transfers);
  EXPECT_EQ(reports[0].migration_passes, reports[1].migration_passes);
  EXPECT_EQ(reports[0].notifications, reports[1].notifications);
  EXPECT_EQ(reports[0].queries_run, reports[1].queries_run);
  EXPECT_EQ(reports[0].replays_rejected, reports[1].replays_rejected);
}

TEST(AdaptationUnderFire, EveryUserRemainsLocatableAfterAdaptationStorm) {
  // A denser schedule: an event every other tick with all mechanisms and
  // region kills.  The final parity sweep proves nobody fell out.
  core::GridSimulation sim = make_sim(7);
  AdaptationHarness::Options ho = harness_options(7);
  ho.ticks = 12;
  ho.event_ticks = {2, 4, 6, 8, 10};
  ho.fault = FaultKind::kRegionKill;
  ho.ops_per_event = 3;
  AdaptationHarness harness(sim.partition(), sim.field(), ho);
  const auto r = harness.run();
  expect_clean(r);
  EXPECT_GT(r.migrated_records, 0u);
  EXPECT_GT(r.geometry_changes, 0u);
  EXPECT_TRUE(sim.partition().validate().empty());
}

}  // namespace
}  // namespace geogrid::sim
