// Adaptation planner: each of the eight mechanisms fires under its §2.4
// conditions, respects the cost order, and executes correctly.
#include "loadbalance/planner.h"

#include <gtest/gtest.h>

#include <map>

#include "loadbalance/workload_index.h"
#include "overlay/partition.h"

namespace geogrid::loadbalance {
namespace {

using overlay::Partition;

const Rect kPlane{0, 0, 64, 64};

/// A 2x2 grid: SW (subject in most tests), SE, NW in ring 1 of SW and NE in
/// ring 2 (corner-adjacent regions are not neighbors).
class Grid2x2 : public ::testing::Test {
 protected:
  Grid2x2() : p(kPlane) {}

  NodeId add(double capacity, double x, double y) {
    net::NodeInfo n;
    n.id = p.allocate_node_id();
    n.coord = Point{x, y};
    n.capacity = capacity;
    return p.add_node(n);
  }

  /// Builds the grid with the given primary capacities.
  void build(double cap_sw, double cap_se, double cap_nw, double cap_ne) {
    const NodeId n_sw = add(cap_sw, 8, 8);
    const NodeId n_nw = add(cap_nw, 8, 40);
    const NodeId n_se = add(cap_se, 40, 8);
    const NodeId n_ne = add(cap_ne, 40, 40);
    sw = p.create_root(n_sw);
    nw = p.split_explicit(sw, n_nw, /*give_high=*/true);   // split Y
    se = p.split_explicit(sw, n_se, /*give_high=*/true);   // split X (south)
    ne = p.split_explicit(nw, n_ne, /*give_high=*/true);   // split X (north)
  }

  overlay::LoadFn loads(double l_sw, double l_se, double l_nw, double l_ne) {
    return [=, this](RegionId rid) {
      if (rid == sw) return l_sw;
      if (rid == se) return l_se;
      if (rid == nw) return l_nw;
      return l_ne;
    };
  }

  void add_secondary(RegionId rid, double capacity) {
    p.set_secondary(rid, add(capacity, 1, 1));
  }

  Partition p;
  RegionId sw, se, nw, ne;
  PlannerConfig config;
};

TEST_F(Grid2x2, GeometrySanity) {
  build(1, 1, 1, 1);
  EXPECT_EQ(p.region(sw).rect, (Rect{0, 0, 32, 32}));
  EXPECT_EQ(p.region(se).rect, (Rect{32, 0, 32, 32}));
  EXPECT_EQ(p.region(nw).rect, (Rect{0, 32, 32, 32}));
  EXPECT_EQ(p.region(ne).rect, (Rect{32, 32, 32, 32}));
  // SW neighbors SE and NW but not NE (corner touch).
  const auto& n = p.neighbors(sw);
  EXPECT_EQ(n.size(), 2u);
  EXPECT_TRUE(p.validate().empty());
}

// (a) Steal Secondary Owner.
TEST_F(Grid2x2, StealSecondaryFromQualifyingNeighbor) {
  build(1, 10, 10, 10);
  add_secondary(se, 100.0);  // strong donor secondary
  const auto load = loads(10, 1, 1, 0);
  const Plan plan = plan_adaptation(p, load, sw, config);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.mechanism, Mechanism::kStealSecondary);
  EXPECT_EQ(plan.partner, se);

  const NodeId old_primary = p.region(sw).primary;
  const NodeId stolen = *p.region(se).secondary;
  ASSERT_TRUE(execute_plan(p, plan));
  EXPECT_EQ(p.region(sw).primary, stolen);      // stolen node leads
  EXPECT_EQ(*p.region(sw).secondary, old_primary);  // old primary resigns
  EXPECT_FALSE(p.region(se).full());
  EXPECT_TRUE(p.validate().empty());
}

TEST_F(Grid2x2, StealPrefersLowestIndexDonor) {
  build(1, 10, 10, 10);
  add_secondary(se, 100.0);
  add_secondary(nw, 100.0);
  // nw is less loaded than se: it must donate.
  const Plan plan = plan_adaptation(p, loads(10, 5, 1, 0), sw, config);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.mechanism, Mechanism::kStealSecondary);
  EXPECT_EQ(plan.partner, nw);
}

TEST_F(Grid2x2, StealRequiresStrongerSecondary) {
  build(10, 10, 10, 10);
  add_secondary(se, 5.0);  // weaker than the subject's primary
  const Plan plan = plan_adaptation(p, loads(10, 1, 20, 0), sw, config);
  EXPECT_TRUE(!plan.valid || plan.mechanism != Mechanism::kStealSecondary);
}

// (b) Switch Primary Owners.
TEST_F(Grid2x2, SwitchPrimaryImprovesPairwiseMax) {
  build(1, 100, 1, 1);
  const auto load = loads(10, 1, 20, 0);  // sw idx 10; se idx 0.01
  const Plan plan = plan_adaptation(p, load, sw, config);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.mechanism, Mechanism::kSwitchPrimary);
  EXPECT_EQ(plan.partner, se);

  const NodeId weak = p.region(sw).primary;
  const NodeId strong = p.region(se).primary;
  ASSERT_TRUE(execute_plan(p, plan));
  EXPECT_EQ(p.region(sw).primary, strong);
  EXPECT_EQ(p.region(se).primary, weak);
  EXPECT_TRUE(p.validate().empty());
}

TEST_F(Grid2x2, SwitchPrimaryRejectedWithoutImprovement) {
  build(1, 100, 1, 1);
  // The strong neighbor is itself so loaded that swapping makes things
  // worse: 50/1 = 50 > old max 10.
  const Plan plan = plan_adaptation(p, loads(10, 50, 100, 0), sw, config);
  EXPECT_NE(plan.mechanism, Mechanism::kSwitchPrimary);
}

// (c) Merge with a Neighbor.
TEST_F(Grid2x2, MergeWhenUnionLowersIndex) {
  build(1, 100, 1, 1);
  // (b) is not improving: se load 50 on the weak node would dominate.
  const auto load = loads(2, 50, 100, 0);
  // sw idx 2; se idx 0.5; merged = 52/100 = 0.52 < avg(2, 0.5) = 1.25.
  const Plan plan = plan_adaptation(p, load, sw, config);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.mechanism, Mechanism::kMergeNeighbor);
  EXPECT_EQ(plan.partner, se);

  const NodeId weak = p.region(sw).primary;
  ASSERT_TRUE(execute_plan(p, plan));
  // The stronger primary keeps the merged region; the weak one becomes its
  // secondary, so no node loses its seat.
  EXPECT_FALSE(p.has_region(sw));
  EXPECT_EQ(p.region(se).rect, (Rect{0, 0, 64, 32}));
  EXPECT_EQ(*p.region(se).secondary, weak);
  EXPECT_TRUE(p.validate().empty());
}

TEST_F(Grid2x2, MergeSkipsFullRegions) {
  build(1, 100, 1, 1);
  add_secondary(se, 5.0);  // donor now full: merging would evict a seat
  const Plan plan = plan_adaptation(p, loads(2, 50, 100, 0), sw, config);
  EXPECT_NE(plan.mechanism, Mechanism::kMergeNeighbor);
}

// (d) Split a Region.
TEST_F(Grid2x2, SplitWhenDualPeersHaveEqualCapacity) {
  build(10, 10, 10, 10);
  add_secondary(sw, 10.0);  // equal capacities
  const Plan plan = plan_adaptation(p, loads(10, 1, 1, 0), sw, config);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.mechanism, Mechanism::kSplitRegion);

  const std::size_t regions_before = p.region_count();
  ASSERT_TRUE(execute_plan(p, plan));
  EXPECT_EQ(p.region_count(), regions_before + 1);
  EXPECT_FALSE(p.region(sw).full());
  EXPECT_TRUE(p.validate().empty());
}

// (e) Switch Primary with a Neighbor's Secondary.
TEST_F(Grid2x2, SwitchWithNeighborSecondary) {
  build(2, 2, 2, 2);
  add_secondary(sw, 1.0);    // subject full, unequal caps (skips d)
  add_secondary(se, 100.0);  // strong secondary next door
  const auto load = loads(10, 1, 20, 0);
  const Plan plan = plan_adaptation(p, load, sw, config);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.mechanism, Mechanism::kSwitchWithNeighborSecondary);
  EXPECT_EQ(plan.partner, se);

  const NodeId weak = p.region(sw).primary;
  const NodeId strong = *p.region(se).secondary;
  ASSERT_TRUE(execute_plan(p, plan));
  EXPECT_EQ(p.region(sw).primary, strong);
  EXPECT_EQ(*p.region(se).secondary, weak);
  EXPECT_TRUE(p.validate().empty());
}

// (f) Steal Remote Secondary (ring 2 via TTL search).
TEST_F(Grid2x2, StealRemoteSecondary) {
  build(1, 1, 1, 5);
  add_secondary(ne, 100.0);  // ring-2 donor
  // Ring-1 regions are weak, loaded enough to fail (b)/(c).
  const auto load = loads(10, 5, 5, 0.5);
  const Plan plan = plan_adaptation(p, load, sw, config);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.mechanism, Mechanism::kStealRemoteSecondary);
  EXPECT_EQ(plan.partner, ne);

  const NodeId stolen = *p.region(ne).secondary;
  ASSERT_TRUE(execute_plan(p, plan));
  EXPECT_EQ(p.region(sw).primary, stolen);
  EXPECT_TRUE(p.validate().empty());
}

TEST_F(Grid2x2, RemoteStealRequiresLessLoadedDonor) {
  build(1, 1, 1, 1);
  add_secondary(ne, 100.0);
  // Donor index (20/1) exceeds the subject's (10/1): not "less loaded".
  const Plan plan = plan_adaptation(p, loads(10, 5, 5, 20), sw, config);
  EXPECT_NE(plan.mechanism, Mechanism::kStealRemoteSecondary);
}

// (g) Switch Primary with Remote Secondary.
TEST_F(Grid2x2, SwitchWithRemoteSecondary) {
  build(2, 2, 2, 2);
  add_secondary(sw, 1.0);
  add_secondary(ne, 100.0);
  const auto load = loads(10, 5, 5, 0.5);
  const Plan plan = plan_adaptation(p, load, sw, config);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.mechanism, Mechanism::kSwitchWithRemoteSecondary);
  EXPECT_EQ(plan.partner, ne);

  const NodeId weak = p.region(sw).primary;
  ASSERT_TRUE(execute_plan(p, plan));
  EXPECT_EQ(*p.region(ne).secondary, weak);
  EXPECT_TRUE(p.validate().empty());
}

// (h) Switch Primary with Remote Primary.
TEST_F(Grid2x2, SwitchWithRemotePrimary) {
  build(2, 2, 2, 100);
  add_secondary(sw, 1.0);
  const auto load = loads(10, 5, 5, 0.1);
  const Plan plan = plan_adaptation(p, load, sw, config);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.mechanism, Mechanism::kSwitchWithRemotePrimary);
  EXPECT_EQ(plan.partner, ne);

  const NodeId weak = p.region(sw).primary;
  const NodeId strong = p.region(ne).primary;
  ASSERT_TRUE(execute_plan(p, plan));
  EXPECT_EQ(p.region(sw).primary, strong);
  EXPECT_EQ(p.region(ne).primary, weak);
  EXPECT_TRUE(p.validate().empty());
}

// Cost ordering: a cheaper mechanism always wins when several apply.
TEST_F(Grid2x2, CheapestApplicableMechanismWins) {
  build(1, 100, 10, 10);
  add_secondary(se, 200.0);  // (a) applicable
  // (b) would also apply (cap 100 > 1, improving).
  const Plan plan = plan_adaptation(p, loads(10, 1, 1, 0), sw, config);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.mechanism, Mechanism::kStealSecondary);
}

// Ablation switches disable individual mechanisms.
TEST_F(Grid2x2, DisabledMechanismIsSkipped) {
  build(1, 100, 10, 10);
  add_secondary(se, 200.0);
  config.enabled[static_cast<std::size_t>(Mechanism::kStealSecondary)] =
      false;
  const Plan plan = plan_adaptation(p, loads(10, 1, 1, 0), sw, config);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.mechanism, Mechanism::kSwitchPrimary);
}

TEST_F(Grid2x2, NoMechanismReturnsInvalidPlan) {
  build(10, 10, 10, 10);  // homogeneous, nothing to gain anywhere
  const Plan plan = plan_adaptation(p, loads(10, 10, 10, 10), sw, config);
  EXPECT_FALSE(plan.valid);
}

TEST_F(Grid2x2, StalePlanExecutionFailsSafely) {
  build(1, 10, 10, 10);
  add_secondary(se, 100.0);
  Plan plan = plan_adaptation(p, loads(10, 1, 1, 0), sw, config);
  ASSERT_TRUE(plan.valid);
  // The donor's secondary vanishes before execution.
  p.clear_secondary(se);
  EXPECT_FALSE(execute_plan(p, plan));
  EXPECT_TRUE(p.validate().empty());  // partition untouched
}

}  // namespace
}  // namespace geogrid::loadbalance
