// Epoch-reclaimed snapshot read path: ShardedDirectory's retired-snapshot
// bookkeeping, QueryEngine::run_pinned equivalence with the writer-side
// run(), and concurrent pinned readers racing a publishing writer (the
// deployment the sanitizer jobs exercise).
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mobility/motion.h"
#include "mobility/query_engine.h"
#include "mobility/sharded_directory.h"

namespace geogrid::mobility {
namespace {

constexpr Rect kPlane{0.0, 0.0, 64.0, 64.0};

struct QuadrantFixture {
  overlay::Partition partition{kPlane};
  QuadrantFixture() {
    const NodeId a = partition.add_node({NodeId{1}, Point{10, 10}, 10.0});
    const NodeId b = partition.add_node({NodeId{2}, Point{10, 50}, 10.0});
    const NodeId c = partition.add_node({NodeId{3}, Point{50, 10}, 10.0});
    const NodeId d = partition.add_node({NodeId{4}, Point{50, 50}, 10.0});
    const RegionId root = partition.create_root(a);
    const RegionId north = partition.split(root, b);
    partition.split(root, c);
    partition.split(north, d);
    EXPECT_EQ(partition.region_count(), 4u);
  }
};

std::vector<LocationRecord> tick_batch(UserPopulation& pop, double now) {
  std::vector<LocationRecord> batch;
  pop.step(1.0, now);
  for (auto& u : pop.users()) {
    batch.push_back({u.id, u.position, u.next_seq++, now});
  }
  return batch;
}

std::vector<std::byte> result_bytes(std::span<const QueryResult> results) {
  net::Writer w;
  QueryEngine::serialize(w, results);
  return std::move(w).take();
}

TEST(SnapshotReclaim, RetiredSnapshotsAreReclaimedWithoutReaders) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2});
  UserPopulation pop(50, {}, nullptr, Rng(11));
  double now = 0.0;
  for (int i = 0; i < 5; ++i) {
    dir.apply_updates(tick_batch(pop, now += 1.0));
    (void)dir.publish_snapshot();
  }
  // Each publish after the first superseded its predecessor, and with no
  // reader pinned every retired snapshot becomes reclaimable by the next
  // publish.
  EXPECT_GE(dir.counters().snapshots_retired, 4u);
  EXPECT_GT(dir.counters().snapshots_reclaimed, 0u);
  EXPECT_LE(dir.counters().snapshots_reclaimed,
            dir.counters().snapshots_retired);
}

TEST(SnapshotReclaim, ActivePinHoldsSupersededSnapshot) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2});
  UserPopulation pop(50, {}, nullptr, Rng(12));
  double now = 0.0;
  dir.apply_updates(tick_batch(pop, now += 1.0));
  (void)dir.publish_snapshot();

  auto reader = dir.register_reader();
  ASSERT_TRUE(reader.registered());
  reader.pin();
  const DirectorySnapshot* pinned = dir.pinned_snapshot();
  ASSERT_NE(pinned, nullptr);
  const std::uint64_t pinned_epoch = pinned->epoch();

  // Supersede the pinned snapshot several times.  The pin must keep the
  // old snapshot readable: its epoch and stores stay exactly as acquired.
  for (int i = 0; i < 3; ++i) {
    dir.apply_updates(tick_batch(pop, now += 1.0));
    (void)dir.publish_snapshot();
  }
  EXPECT_GE(dir.counters().snapshots_retired, 3u);
  const std::uint64_t reclaimed_while_pinned =
      dir.counters().snapshots_reclaimed;
  EXPECT_EQ(pinned->epoch(), pinned_epoch);  // still alive and unchanged
  reader.unpin();

  // With the pin gone the backlog drains on the next publish.
  dir.apply_updates(tick_batch(pop, now += 1.0));
  (void)dir.publish_snapshot();
  EXPECT_GT(dir.counters().snapshots_reclaimed, reclaimed_while_pinned);
}

TEST(SnapshotReclaim, RunPinnedMatchesWriterSideRun) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 4});
  UserPopulation pop(200, {}, nullptr, Rng(13));
  double now = 0.0;
  for (int i = 0; i < 10; ++i) {
    dir.apply_updates(tick_batch(pop, now += 1.0));
  }

  std::vector<Query> batch;
  for (std::uint32_t u = 1; u <= 200; ++u) batch.push_back(Query::locate(UserId{u}));
  batch.push_back(Query::range(Rect{8.0, 8.0, 40.0, 40.0}));
  batch.push_back(Query::nearest(Point{32.0, 32.0}, 12));

  QueryEngine engine(dir, {.threads = 2});
  const auto via_run = engine.run(batch);        // publishes the snapshot
  const auto via_pinned = engine.run_pinned(batch);
  EXPECT_EQ(result_bytes(via_run), result_bytes(via_pinned));
}

TEST(SnapshotReclaim, RunPinnedBeforeFirstPublishAnswersEmpty) {
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2});
  QueryEngine engine(dir, {.threads = 1});
  std::vector<Query> batch{Query::locate(UserId{1}),
                           Query::range(Rect{0.0, 0.0, 64.0, 64.0})};
  const auto results = engine.run_pinned(batch);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].found);
  EXPECT_TRUE(results[1].records.empty());
}

TEST(SnapshotReclaim, ConcurrentPinnedReadersRacePublishingWriter) {
  // The deployment shape: engines on their own threads acquiring
  // snapshots through run_pinned while the writer ingests and publishes.
  // Epoch reclamation must keep every acquired snapshot alive for the
  // duration of its batch — a lifetime bug is a crash or sanitizer
  // report here, and locate answers must always be internally coherent.
  QuadrantFixture fx;
  ShardedDirectory dir(fx.partition, {.shards = 2});
  UserPopulation pop(100, {}, nullptr, Rng(14));
  double now = 0.0;
  dir.apply_updates(tick_batch(pop, now += 1.0));
  (void)dir.publish_snapshot();

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&dir, &done] {
      QueryEngine engine(dir, {.threads = 1});
      std::vector<Query> batch;
      for (std::uint32_t u = 1; u <= 100; ++u) {
        batch.push_back(Query::locate(UserId{u}));
      }
      while (!done.load(std::memory_order_acquire)) {
        const auto results = engine.run_pinned(batch);
        for (const QueryResult& r : results) {
          if (r.found) {
            // A located record read off a pinned snapshot is coherent:
            // its position sits inside the plane the trace never leaves.
            EXPECT_TRUE(kPlane.covers_inclusive(r.located.position));
          }
        }
      }
    });
  }

  for (int i = 0; i < 200; ++i) {
    dir.apply_updates(tick_batch(pop, now += 1.0));
    (void)dir.publish_snapshot();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GE(dir.counters().snapshots_retired, 100u);
  EXPECT_GT(dir.counters().snapshots_reclaimed, 0u);
}

}  // namespace
}  // namespace geogrid::mobility
