// EpochDomain: reader slot registration, pin/unpin epoch announcements,
// the retire/safe-epoch reclamation contract, and a publish-while-reading
// stress that exercises the full EBR handshake under the sanitizers.
#include "common/epoch_reclaim.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace geogrid::common {
namespace {

TEST(EpochDomain, RegisterReaderClaimsDistinctSlots) {
  EpochDomain domain;
  auto a = domain.register_reader();
  auto b = domain.register_reader();
  ASSERT_TRUE(a.registered());
  ASSERT_TRUE(b.registered());
  // Distinct slots: one reader pinning must not disturb the other's state.
  a.pin();
  EXPECT_EQ(domain.safe_epoch(), domain.epoch());
  a.unpin();
}

TEST(EpochDomain, RegistrationFallsBackWhenTableIsFull) {
  EpochDomain domain;
  std::vector<EpochDomain::Reader> readers;
  for (std::size_t i = 0; i < EpochDomain::kMaxReaders; ++i) {
    readers.push_back(domain.register_reader());
    ASSERT_TRUE(readers.back().registered());
  }
  EXPECT_FALSE(domain.register_reader().registered());
}

TEST(EpochDomain, RetireWithoutReadersIsImmediatelySafe) {
  EpochDomain domain;
  const std::uint64_t stamp = domain.retire_epoch();
  // No reader pinned: the safe bound exceeds the stamp right away.
  EXPECT_GT(domain.safe_epoch(), stamp);
}

TEST(EpochDomain, PinBlocksReclaimUntilUnpin) {
  EpochDomain domain;
  auto reader = domain.register_reader();
  reader.pin();  // announces the current epoch
  const std::uint64_t stamp = domain.retire_epoch();
  // The pinned reader may still hold the object retired at `stamp`:
  // safe_epoch() must not move past it.
  EXPECT_LE(domain.safe_epoch(), stamp);
  reader.unpin();
  EXPECT_GT(domain.safe_epoch(), stamp);
}

TEST(EpochDomain, GuardUnpinsOnScopeExit) {
  EpochDomain domain;
  auto reader = domain.register_reader();
  std::uint64_t stamp = 0;
  {
    EpochDomain::Guard pin(reader);
    stamp = domain.retire_epoch();
    EXPECT_LE(domain.safe_epoch(), stamp);
  }
  EXPECT_GT(domain.safe_epoch(), stamp);
}

TEST(EpochDomain, LaterPinDoesNotBlockEarlierRetirement) {
  EpochDomain domain;
  auto reader = domain.register_reader();
  const std::uint64_t stamp = domain.retire_epoch();
  // A reader pinning *after* the retirement announces the new epoch; the
  // object retired at `stamp` predates anything it can observe.
  reader.pin();
  EXPECT_GT(domain.safe_epoch(), stamp);
  reader.unpin();
}

TEST(EpochDomain, PublishRetireStressUnderReaders) {
  // One writer repeatedly publishes heap objects and frees retired ones as
  // they become safe; readers continuously pin, load, validate and unpin.
  // A reclamation bug is a use-after-free here — the sanitizer jobs turn
  // this into a hard failure, and the canary check catches torn objects
  // even in plain builds.
  struct Payload {
    std::uint64_t seq;
    std::uint64_t canary;
  };
  EpochDomain domain;
  std::atomic<Payload*> published{new Payload{0, 7}};
  std::atomic<bool> done{false};

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    auto handle = domain.register_reader();
    ASSERT_TRUE(handle.registered());
    readers.emplace_back([&, handle]() mutable {
      while (!done.load(std::memory_order_acquire)) {
        EpochDomain::Guard pin(handle);
        const Payload* p = published.load(std::memory_order_acquire);
        // The canary is a pure function of seq; a reclaimed-under-us or
        // half-constructed object fails this.
        EXPECT_EQ(p->canary, p->seq * 3 + 7);
      }
    });
  }

  struct Retired {
    Payload* object;
    std::uint64_t stamp;
  };
  std::vector<Retired> retired;
  std::uint64_t freed = 0;
  for (std::uint64_t seq = 1; seq <= 4000; ++seq) {
    auto* next = new Payload{seq, seq * 3 + 7};
    Payload* old = published.exchange(next, std::memory_order_acq_rel);
    retired.push_back({old, domain.retire_epoch()});
    const std::uint64_t safe = domain.safe_epoch();
    std::erase_if(retired, [&](const Retired& r) {
      if (r.stamp >= safe) return false;
      delete r.object;
      ++freed;
      return true;
    });
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  // In-loop reclamation is opportunistic (a reader descheduled while
  // pinned legitimately holds everything back on a loaded box), but once
  // every reader has unpinned and joined, one more pass must free the
  // entire backlog — the accounting is exact, not best-effort.
  const std::uint64_t final_safe = domain.safe_epoch();
  std::erase_if(retired, [&](const Retired& r) {
    EXPECT_LT(r.stamp, final_safe);
    delete r.object;
    ++freed;
    return true;
  });
  delete published.load();
  EXPECT_TRUE(retired.empty());
  EXPECT_EQ(freed, 4000u);
}

}  // namespace
}  // namespace geogrid::common
