// Property suite: greedy geographic routing always terminates, always
// finds the covering region, and its mean cost scales as O(sqrt(N)).
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "metrics/collector.h"
#include "overlay/router.h"

namespace geogrid::overlay {
namespace {

struct Params {
  core::GridMode mode;
  std::size_t nodes;
  std::uint64_t seed;
};

class RoutingProperties : public ::testing::TestWithParam<Params> {
 protected:
  core::GridSimulation make_sim() const {
    const auto [mode, nodes, seed] = GetParam();
    core::SimulationOptions opt;
    opt.mode = mode;
    opt.node_count = nodes;
    opt.seed = seed;
    opt.field.cells_x = 64;
    opt.field.cells_y = 64;
    return core::GridSimulation(opt);
  }
};

TEST_P(RoutingProperties, EveryRouteReachesTheCoveringRegion) {
  auto sim = make_sim();
  const Partition& p = sim.partition();
  Rng rng(GetParam().seed + 1);

  std::vector<RegionId> ids;
  for (const auto& [id, r] : p.regions()) ids.push_back(id);

  for (int i = 0; i < 300; ++i) {
    const RegionId from = ids[rng.uniform_index(ids.size())];
    const Point target{rng.uniform(1e-6, 64.0), rng.uniform(1e-6, 64.0)};
    const RouteResult r = route_greedy(p, from, target);
    ASSERT_TRUE(r.reached);
    EXPECT_TRUE(p.region(r.executor).rect.covers(target) ||
                p.region(r.executor).rect.covers_inclusive(target));
    EXPECT_LE(r.hops, 2 * p.region_count());
  }
}

TEST_P(RoutingProperties, MeanHopsWithinSqrtBound) {
  auto sim = make_sim();
  Rng rng(GetParam().seed + 2);
  const Summary hops =
      metrics::routing_hop_summary(sim.partition(), rng, 400);
  const double n = static_cast<double>(sim.partition().region_count());
  // The paper claims O(2*sqrt(N)); allow slack for irregular partitions.
  EXPECT_LE(hops.mean, 3.0 * std::sqrt(n) + 4.0);
}

TEST_P(RoutingProperties, DisseminationCoversExactOverlapSet) {
  auto sim = make_sim();
  const Partition& p = sim.partition();
  Rng rng(GetParam().seed + 3);
  for (int i = 0; i < 100; ++i) {
    const Point c{rng.uniform(2.0, 62.0), rng.uniform(2.0, 62.0)};
    const Rect query{c.x - 1.5, c.y - 1.5, 3.0, 3.0};
    const RegionId executor = p.locate(query.center());
    ASSERT_TRUE(executor.valid());
    const auto targets = overlapping_neighbors(p, executor, query);
    // Soundness: every target overlaps.
    for (const RegionId t : targets) {
      EXPECT_TRUE(p.region(t).rect.intersects(query));
    }
    // Completeness: every overlapping *neighbor* is targeted.
    for (const RegionId n : p.neighbors(executor)) {
      if (p.region(n).rect.intersects(query)) {
        EXPECT_NE(std::find(targets.begin(), targets.end(), n),
                  targets.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSizes, RoutingProperties,
    ::testing::Values(Params{core::GridMode::kBasic, 100, 1},
                      Params{core::GridMode::kBasic, 400, 2},
                      Params{core::GridMode::kDualPeer, 100, 3},
                      Params{core::GridMode::kDualPeer, 400, 4},
                      Params{core::GridMode::kDualPeerAdaptive, 250, 5}),
    [](const ::testing::TestParamInfo<Params>& param_info) {
      std::string name;
      switch (param_info.param.mode) {
        case core::GridMode::kBasic: name = "Basic"; break;
        case core::GridMode::kDualPeer: name = "DualPeer"; break;
        case core::GridMode::kDualPeerAdaptive: name = "Adaptive"; break;
        case core::GridMode::kCanBaseline: name = "Can"; break;
      }
      return name + std::to_string(param_info.param.nodes) + "Seed" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace geogrid::overlay
