// Super-Bowl parking — the paper's hot-spot narrative, §3.1.
//
// "During a sport event like Super bowl, parking lots close to the stadium
// are usually fully loaded. More people will be interested in finding a
// parking space that is closer to the stadium" — queries form a circular
// hot spot peaking at the stadium with the 1 - d/r falloff.  This example
// drops that hot spot on an engine-mode GeoGrid, shows the overload it
// causes around the stadium, then turns the adaptation mechanisms on and
// watches them pull strong nodes into the hot zone.
#include <cstdio>

#include "common/ascii_render.h"
#include "core/engine.h"
#include "loadbalance/workload_index.h"
#include "metrics/collector.h"

using namespace geogrid;

namespace {

void report(const char* label, core::GridSimulation& sim) {
  const Summary s = sim.workload_summary();
  std::printf("%-28s mean=%.5f stddev=%.5f max=%.5f\n", label, s.mean,
              s.stddev, s.max);
}

}  // namespace

int main() {
  // A 64x64-mile city, 800 proxies, dual peer on, adaptation initially
  // idle (we drive rounds manually to watch the effect).
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeerAdaptive;
  opt.node_count = 800;
  opt.seed = 53;  // Super Bowl LIII, Atlanta
  opt.field.hotspot_count = 0;  // we place the stadium ourselves
  core::GridSimulation sim(opt);

  // Kickoff: a single sharp hot spot at the stadium (radius 6 miles).
  const Point stadium{24.0, 40.0};
  sim.field().mutable_hotspots().push_back(
      workload::HotSpot{stadium, 6.0});
  sim.field().rebuild();

  std::printf("hot spot of parking queries centered at the stadium:\n%s\n",
              render_field(sim.field().plane(),
                           [&](Point p) { return sim.field().at(p); }, 16,
                           32)
                  .c_str());

  report("kickoff (no adaptation)", sim);
  const Summary before = sim.workload_summary();

  // The stadium region's owner is drowning; run the adaptation process.
  for (int round = 0; round < 12; ++round) {
    const auto stats = sim.driver().run_round();
    if (stats.executed == 0) break;
    std::printf("  round %2d: %3zu adaptations", round, stats.executed);
    for (std::size_t i = 0; i < loadbalance::kMechanismCount; ++i) {
      if (stats.per_mechanism[i] > 0) {
        std::printf("  %c:%zu",
                    loadbalance::mechanism_letter(
                        static_cast<loadbalance::Mechanism>(i)),
                    stats.per_mechanism[i]);
      }
    }
    std::printf("\n");
  }
  report("after adaptation", sim);
  const Summary after = sim.workload_summary();
  std::printf("imbalance (stddev) reduced %.1fx, worst node relieved %.1fx\n",
              before.stddev / after.stddev, before.max / after.max);

  // The game ends: the crowd disperses to parking lots around the stadium
  // perimeter — the hot spot migrates outward over several epochs.
  std::printf("\npost-game: hot spot drifts as the crowd disperses\n");
  for (int epoch = 0; epoch < 6; ++epoch) {
    sim.migrate_hotspots(2);
    const auto stats = sim.driver().run_round();
    const Summary s = sim.workload_summary();
    std::printf("  epoch %d: stddev=%.5f (%zu adaptations)\n", epoch,
                s.stddev, stats.executed);
  }

  // Show who ended up owning the stadium area: adaptation should have put
  // a strong node in charge.
  const RegionId stadium_region = sim.partition().locate(stadium);
  const auto& region = sim.partition().region(stadium_region);
  std::printf("\nstadium region owner capacity: %.0f (grid mean %.1f)\n",
              sim.partition().node(region.primary).capacity,
              opt.capacities.mean());
  return 0;
}
