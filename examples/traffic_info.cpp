// Traffic information dissemination — the paper's motivating workload.
//
// Morning rush hour in a metropolitan area: inbound highways are hot, so
// location queries cluster around them; in the afternoon the hot spots
// move to the outbound routes.  Commuters hold standing subscriptions
// ("inform me of the traffic around X for the next 30 minutes") and
// roadside sources publish condition updates.  The example shows GeoGrid
// routing every publication to the covering region and fanning
// notifications out to matching subscribers, while the engine-mode mirror
// of the same deployment quantifies how the moving hot spot shifts load.
#include <cstdio>
#include <string>

#include "core/cluster.h"
#include "core/engine.h"
#include "workload/query_gen.h"

using namespace geogrid;

int main() {
  core::Cluster::Options options;
  options.node.mode = core::GridMode::kDualPeer;
  options.seed = 85;  // I-85
  core::Cluster cluster(options);

  std::printf("deploying 40 roadside proxy nodes...\n");
  for (int i = 0; i < 40; ++i) cluster.spawn();
  cluster.run_until_joined();
  cluster.run_for(10.0);

  // The inbound corridor: a diagonal band of points of interest.
  const Point corridor[] = {{12, 52}, {22, 42}, {32, 32}, {42, 22}, {52, 12}};

  // Commuters subscribe along the corridor for 30 simulated minutes.
  int notifications = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    auto& commuter = *cluster.nodes()[i];
    commuter.on_notify = [&notifications, i](const net::Notify& n) {
      ++notifications;
      std::printf("  commuter %zu <- [%s] %s\n", i, n.topic.c_str(),
                  n.payload.c_str());
    };
    const Point poi = corridor[i];
    commuter.subscribe(Rect{poi.x - 2, poi.y - 2, 4, 4}, "traffic", 1800.0);
  }
  cluster.run_for(10.0);

  // Morning: sources along the corridor publish congestion updates.
  std::printf("morning rush: publishing corridor conditions...\n");
  for (int minute = 0; minute < 5; ++minute) {
    for (std::size_t i = 0; i < 5; ++i) {
      cluster.nodes()[10 + i]->publish(
          corridor[i], "traffic",
          "mile " + std::to_string(10 * (i + 1)) + ": heavy, " +
              std::to_string(15 + minute) + " mph");
    }
    cluster.run_for(60.0);
  }
  std::printf("%d notifications delivered along the corridor\n\n",
              notifications);

  // Engine-mode mirror: quantify the rush-hour hot spot moving from the
  // inbound to the outbound side, and what it does to the load balance.
  std::printf("engine mirror: rush-hour hot spot crossing town\n");
  core::SimulationOptions sim_opt;
  sim_opt.mode = core::GridMode::kDualPeerAdaptive;
  sim_opt.node_count = 1000;
  sim_opt.seed = 85;
  sim_opt.field.hotspot_count = 4;
  core::GridSimulation sim(sim_opt);
  std::printf("%8s  %10s %10s %12s\n", "epoch", "mean", "stddev",
              "adaptations");
  for (int epoch = 0; epoch < 8; ++epoch) {
    sim.migrate_hotspots(5);
    const auto round = sim.driver().run_round();
    const Summary s = sim.workload_summary();
    std::printf("%8d  %10.5f %10.5f %12zu\n", epoch, s.mean, s.stddev,
                round.executed);
  }
  return 0;
}
