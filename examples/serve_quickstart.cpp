// Serving-edge quickstart: a real TCP server on loopback, driven through
// the blocking client library.
//
//   $ ./example_serve_quickstart
//
// Everything the other examples do in-process here crosses a socket: the
// server fronts a sharded location directory, a parallel query engine and
// the pub/sub notification engine, speaking the framed binary protocol on
// an ephemeral loopback port.  One client ingests a small fleet, another
// subscribes to a geofence and a friend, and the pushed Notify frames
// arrive on the subscriber's connection as the fleet moves.
#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "mobility/query_engine.h"
#include "mobility/sharded_directory.h"
#include "pubsub/notification_engine.h"
#include "pubsub/subscription_index.h"
#include "serve/client.h"
#include "serve/server.h"

using namespace geogrid;

int main() {
  // The engines behind the edge: a 1000-node simulated partition supplies
  // the region map; the directory shards ingest across 4 stores and
  // tracks deltas so notifications match incrementally.
  core::SimulationOptions opt;
  opt.mode = core::GridMode::kDualPeer;
  opt.node_count = 1000;
  opt.seed = 2007;
  core::GridSimulation sim(opt);
  mobility::ShardedDirectory directory(
      sim.partition(), {.shards = 4, .cell_size = 1.0, .track_deltas = true});
  mobility::QueryEngine queries(directory, {.threads = 2});
  pubsub::SubscriptionIndex subscriptions(sim.partition().plane());
  pubsub::NotificationEngine notifications(directory, subscriptions,
                                           {.threads = 2});

  // Port 0 = pick an ephemeral loopback port; small flush thresholds so
  // this toy workload flushes promptly rather than waiting for thousands
  // of staged records.
  core::ServeOptions sopt;
  sopt.ingest_flush_records = 64;
  sopt.flush_deadline_ms = 5;
  serve::Server server({directory, queries, subscriptions, notifications},
                       sopt);
  server.start();
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // A subscriber watches a downtown geofence and tracks one friend.
  serve::Client watcher(serve::Client::Options{.port = server.port()});
  watcher.connect();
  const Rect downtown{20.0, 20.0, 8.0, 8.0};
  watcher.subscribe_area(/*sub_id=*/1, downtown, serve::geofence_filter(1));
  watcher.subscribe_friend(/*sub_id=*/2, UserId{7});
  std::printf("subscribed: geofence over (20,20)-(28,28) and friend #7\n");

  // A reporter ingests a 64-user fleet parked well outside the fence.
  serve::Client reporter(serve::Client::Options{.port = server.port()});
  reporter.connect();
  std::vector<mobility::LocationRecord> fleet;
  for (std::uint32_t i = 1; i <= 64; ++i) {
    fleet.push_back({UserId{i}, Point{2.0 + 0.5 * (i % 16), 40.0 + i / 16},
                     /*seq=*/1, 0.0});
  }
  const std::size_t acked = reporter.update_batch(fleet);
  std::printf("ingested %zu location updates over the wire\n", acked);

  // Locate one of them through the query engine, over the same socket.
  const mobility::QueryResult loc = reporter.locate(UserId{7});
  std::printf("locate(#7): found=%d at (%.1f, %.1f)\n", loc.found,
              loc.located.position.x, loc.located.position.y);

  // The fleet's second report moves users 1-8 (friend #7 among them) into
  // the fence; the server's ingest flush drains the notification engine
  // and pushes Notify frames to the watcher's connection.
  std::vector<mobility::LocationRecord> movers;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    movers.push_back({UserId{i}, Point{21.0 + i, 24.0}, /*seq=*/2, 0.0});
  }
  reporter.update_batch(movers);
  std::size_t seen = 0;
  int quiet = 0;
  while (quiet < 3) {  // drain until the push stream goes quiet
    const std::size_t now = watcher.poll_notifications(100);
    quiet = now == seen ? quiet + 1 : 0;
    seen = now;
  }
  for (const net::Notify& n : watcher.take_notifications()) {
    std::printf("  notify sub=%llu topic=%s %s\n",
                static_cast<unsigned long long>(n.sub_id), n.topic.c_str(),
                n.payload.c_str());
  }

  server.stop();
  std::printf("done: %llu frames served\n",
              static_cast<unsigned long long>(server.counters().frames_in));
  return 0;
}
