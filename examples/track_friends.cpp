// Friend tracking — the mobile-user layer end to end, over the wire.
//
// The paper's motivating application: "a user can send a location query to
// obtain the parking information ... or track where his friends are".  This
// example stands up a protocol-mode GeoGrid, attaches two mobile users
// (Bob and Carol) through their access proxies, and walks through the whole
// mobile-user story:
//
//   1. Alice subscribes to presence over the campus rectangle.
//   2. Bob drives onto campus -> his LocationUpdate matches Alice's
//      subscription at the owning region and a Notify comes back.
//   3. Bob wanders around campus -> no duplicate notifications.
//   4. Alice locates Carol with a LocateRequest routed by geography.
//   5. The campus region's primary owner crashes -> the secondary's
//      replicated location store keeps both friends locatable.
#include <cstdio>

#include "core/cluster.h"

using namespace geogrid;

namespace {

core::GeoGridNode* alive_node(core::Cluster& cluster,
                              const core::GeoGridNode* not_this) {
  for (auto& node : cluster.nodes()) {
    if (!node->departed() && node->joined() && node.get() != not_this) {
      return node.get();
    }
  }
  return nullptr;
}

}  // namespace

int main() {
  core::Cluster::Options opt;
  opt.node.mode = core::GridMode::kDualPeer;
  opt.seed = 7;
  core::Cluster cluster(opt);
  for (int i = 0; i < 40; ++i) cluster.spawn();
  cluster.run_until_joined();
  cluster.run_for(20.0);
  std::size_t regions = 0;
  for (const auto& node : cluster.nodes()) {
    for (const auto& [rid, region] : node->owned()) {
      if (region.is_primary()) ++regions;
    }
  }
  std::printf("grid up: %zu nodes, %zu regions\n", cluster.nodes().size(),
              regions);

  // Alice's phone talks to one grid node; Bob's and Carol's to others.
  auto& alice = *cluster.nodes()[0];
  auto& bobs_proxy = *cluster.nodes()[1];
  auto& carols_proxy = *cluster.nodes()[2];
  const UserId bob{1}, carol{2};

  alice.on_notify = [](const net::Notify& n) {
    std::printf("  [alice] notify: %s entered the campus (sub %llu)\n",
                n.payload.c_str(),
                static_cast<unsigned long long>(n.sub_id));
  };
  alice.on_locate = [](const net::LocateReply& r) {
    if (r.found) {
      std::printf("  [alice] user %u is at (%.1f, %.1f), %u hops away\n",
                  r.user.value, r.location.x, r.location.y, r.hops);
    } else {
      std::printf("  [alice] user %u is nowhere on the grid\n", r.user.value);
    }
  };

  // 1. Presence subscription over the campus: a 4x4-mile rectangle.
  const Rect campus{20.0, 20.0, 4.0, 4.0};
  alice.subscribe(campus, std::string(core::kPresenceTopic), 3600.0);
  cluster.run_for(5.0);
  std::printf("alice subscribed to presence over campus "
              "[%.0f,%.0f]x[%.0f,%.0f]\n",
              campus.x, campus.x + campus.width, campus.y,
              campus.y + campus.height);

  // 2. Bob drives toward campus, reporting as he goes.
  std::printf("bob drives onto campus:\n");
  const Point highway{50.0, 50.0}, gate{22.0, 22.0};
  bobs_proxy.submit_location_update(bob, highway, 1);
  cluster.run_for(5.0);
  bobs_proxy.submit_location_update(bob, gate, 2, highway);
  cluster.run_for(5.0);

  // 3. Wandering inside the campus is suppressed — no notification spam.
  std::printf("bob wanders around campus (no duplicate notifies):\n");
  bobs_proxy.submit_location_update(bob, Point{23.0, 21.5}, 3, gate);
  cluster.run_for(5.0);

  // 4. Carol is downtown; Alice asks the grid where she is.
  const Point downtown{30.0, 12.0};
  carols_proxy.submit_location_update(carol, downtown, 1);
  cluster.run_for(5.0);
  std::printf("alice locates carol:\n");
  alice.locate_user(carol, downtown);
  cluster.run_for(5.0);

  // 5. The campus region's primary crashes; the dual-peer replica serves.
  core::GeoGridNode* owner = cluster.primary_covering(gate);
  if (owner != nullptr && owner != &alice) {
    std::printf("campus owner (node %u) crashes...\n", owner->info().id.value);
    owner->crash();
    cluster.run_for(60.0);
    core::GeoGridNode* seeker = alive_node(cluster, owner);
    if (seeker != nullptr) {
      seeker->on_locate = [](const net::LocateReply& r) {
        std::printf("  [after crash] user %u %s at (%.1f, %.1f)\n",
                    r.user.value, r.found ? "still found" : "LOST",
                    r.location.x, r.location.y);
      };
      seeker->locate_user(bob, gate);
      cluster.run_for(10.0);
    }
  }

  std::uint64_t ingested = 0, notifies = 0, handoffs = 0;
  for (const auto& node : cluster.nodes()) {
    ingested += node->counters().location_updates_ingested;
    notifies += node->counters().presence_notifies_sent;
    handoffs += node->counters().user_handoffs;
  }
  std::printf("\ntotals: %llu updates ingested, %llu presence notifies, "
              "%llu handoffs\n",
              static_cast<unsigned long long>(ingested),
              static_cast<unsigned long long>(notifies),
              static_cast<unsigned long long>(handoffs));
  return 0;
}
