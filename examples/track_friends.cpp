// Friend tracking — the mobile-user layer end to end, over the wire.
//
// The paper's motivating application: "a user can send a location query to
// obtain the parking information ... or track where his friends are".  This
// example stands up a protocol-mode GeoGrid, attaches two mobile users
// (Bob and Carol) through their access proxies, and walks through the whole
// mobile-user story:
//
//   1. Alice subscribes to presence over the campus rectangle.
//   2. Bob drives onto campus -> his LocationUpdate matches Alice's
//      subscription at the owning region and a Notify comes back.
//   3. Bob wanders around campus -> no duplicate notifications.
//   4. Alice locates Carol with a LocateRequest routed by geography.
//   5. The campus region's primary owner crashes -> the secondary's
//      replicated location store keeps both friends locatable.
//   6. Continuous tracking at scale: the same friend/geofence semantics
//      through pubsub::NotificationEngine, matching only each epoch's
//      ingest delta — checked event-for-event against the old
//      re-query-every-tick approach on a fixed seed.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/cluster.h"
#include "mobility/sharded_directory.h"
#include "overlay/partition.h"
#include "pubsub/notification_engine.h"
#include "pubsub/subscription_index.h"

using namespace geogrid;

namespace {

core::GeoGridNode* alive_node(core::Cluster& cluster,
                              const core::GeoGridNode* not_this) {
  for (auto& node : cluster.nodes()) {
    if (!node->departed() && node->joined() && node.get() != not_this) {
      return node.get();
    }
  }
  return nullptr;
}

/// What the codebase did before the pub/sub engine existed: every tick,
/// re-run each standing subscription as a fresh query (range per rect
/// subscription, locate per tracked friend) and diff against the previous
/// tick's answers to recover the events.  Kept here as the reference the
/// incremental path is asserted against.
class RequeryTracker {
 public:
  void add_rect(std::uint64_t id, pubsub::SubKind kind, const Rect& area) {
    rects_.push_back({id, kind, area});
  }
  void add_friend(std::uint64_t id, UserId user) {
    friends_.push_back({id, user});
  }

  std::vector<pubsub::Notification> tick(
      const mobility::ShardedDirectory& dir) {
    std::vector<pubsub::Notification> out;
    for (const auto& sub : rects_) {
      std::map<std::uint32_t, Point> now;
      for (const auto& rec : dir.range(sub.area)) {
        now.emplace(rec.user.value, rec.position);
      }
      auto& before = inside_[sub.id];
      for (const auto& [user, pos] : now) {
        const auto prev = before.find(user);
        if (prev == before.end()) {
          out.push_back({sub.id, UserId{user}, pubsub::NotifyEvent::kEnter,
                         pos});
        } else if (sub.kind == pubsub::SubKind::kRange &&
                   !(prev->second == pos)) {
          out.push_back({sub.id, UserId{user}, pubsub::NotifyEvent::kMove,
                         pos});
        }
      }
      for (const auto& [user, pos] : before) {
        if (now.count(user) != 0) continue;
        // The leave is stamped with the user's *current* position — which
        // the re-query path has to go fetch with one more lookup.
        const auto cur = dir.locate(UserId{user});
        if (cur.has_value()) {
          out.push_back({sub.id, UserId{user}, pubsub::NotifyEvent::kLeave,
                         cur->position});
        }
      }
      before = std::move(now);
    }
    for (const auto& f : friends_) {
      const auto cur = dir.locate(f.user);
      if (!cur.has_value()) continue;
      const auto prev = seen_.find(f.user.value);
      if (prev == seen_.end()) {
        out.push_back(
            {f.id, f.user, pubsub::NotifyEvent::kEnter, cur->position});
      } else if (!(prev->second == cur->position)) {
        out.push_back(
            {f.id, f.user, pubsub::NotifyEvent::kMove, cur->position});
      }
      seen_[f.user.value] = cur->position;
    }
    return out;
  }

 private:
  struct RectSub {
    std::uint64_t id;
    pubsub::SubKind kind;
    Rect area;
  };
  struct FriendSub {
    std::uint64_t id;
    UserId user;
  };
  std::vector<RectSub> rects_;
  std::vector<FriendSub> friends_;
  std::map<std::uint64_t, std::map<std::uint32_t, Point>> inside_;
  std::map<std::uint32_t, Point> seen_;
};

/// Canonical order for comparing the two paths: the engine emits per moved
/// user, the re-query diff per subscription — same events, different walk.
void canonicalize(std::vector<pubsub::Notification>& v) {
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    if (a.user != b.user) return a.user < b.user;
    return a.sub_id < b.sub_id;
  });
}

net::Subscribe engine_sub(std::uint64_t id, const Rect& area) {
  net::Subscribe s;
  s.sub_id = id;
  s.subscriber.id = NodeId{1};
  s.area = area;
  s.filter = "presence";
  return s;
}

/// Act 6: the incremental engine against the re-query baseline.
int run_engine_tracking() {
  std::printf("\ncontinuous tracking, engine layer (incremental vs "
              "re-query):\n");
  overlay::Partition partition(Rect{0.0, 0.0, 64.0, 64.0});
  const NodeId a = partition.add_node({NodeId{1}, Point{10, 10}, 10.0});
  const NodeId b = partition.add_node({NodeId{2}, Point{10, 50}, 10.0});
  const NodeId c = partition.add_node({NodeId{3}, Point{50, 10}, 10.0});
  const NodeId d = partition.add_node({NodeId{4}, Point{50, 50}, 10.0});
  const RegionId root = partition.create_root(a);
  const RegionId north = partition.split(root, b);
  partition.split(root, c);
  partition.split(north, d);

  mobility::ShardedDirectory dir(partition,
                                 {.shards = 4, .track_deltas = true});
  pubsub::SubscriptionIndex subs(partition.plane());
  pubsub::NotificationEngine engine(dir, subs);
  RequeryTracker requery;

  // The campus geofence, a range tracker over downtown, a few dozen
  // random geofences, and friend subscriptions on three users.
  Rng rng(7);
  std::uint64_t next_id = 0;
  const auto add_rect = [&](const Rect& area, pubsub::SubKind kind) {
    const std::uint64_t id = ++next_id;
    subs.subscribe(engine_sub(id, area), kind);
    requery.add_rect(id, kind, area);
  };
  add_rect(Rect{20, 20, 4, 4}, pubsub::SubKind::kGeofence);  // the campus
  add_rect(Rect{28, 10, 6, 6}, pubsub::SubKind::kRange);     // downtown
  for (int i = 0; i < 40; ++i) {
    add_rect(Rect{rng.uniform(0, 58), rng.uniform(0, 58), 6, 6},
             rng.chance(0.5) ? pubsub::SubKind::kGeofence
                             : pubsub::SubKind::kRange);
  }
  for (const std::uint32_t friend_user : {1u, 2u, 17u}) {
    const std::uint64_t id = ++next_id;
    subs.subscribe_friend(engine_sub(id, Rect{}), UserId{friend_user});
    requery.add_friend(id, UserId{friend_user});
  }

  constexpr std::size_t kUsers = 200;
  constexpr int kTicks = 25;
  std::vector<Point> pos(kUsers);
  std::vector<std::uint64_t> seq(kUsers, 0);
  std::uint64_t total = 0;
  for (int tick = 0; tick < kTicks; ++tick) {
    std::vector<mobility::LocationRecord> batch;
    for (std::size_t i = 0; i < kUsers; ++i) {
      if (tick == 0) {
        pos[i] = Point{rng.uniform(0.0, 64.0), rng.uniform(0.0, 64.0)};
      } else if (rng.chance(0.3)) {  // 30% of the population moves per tick
        pos[i].x = std::clamp(pos[i].x + rng.uniform(-2.0, 2.0), 1e-9, 64.0);
        pos[i].y = std::clamp(pos[i].y + rng.uniform(-2.0, 2.0), 1e-9, 64.0);
      } else {
        continue;
      }
      batch.push_back({UserId{static_cast<std::uint32_t>(i + 1)}, pos[i],
                       ++seq[i], static_cast<double>(tick)});
    }
    dir.apply_updates(batch);

    auto incremental = engine.drain();
    auto baseline = requery.tick(dir);
    canonicalize(incremental);
    canonicalize(baseline);
    if (incremental != baseline) {
      std::fprintf(stderr,
                   "MISMATCH at tick %d: incremental emitted %zu events, "
                   "re-query %zu\n",
                   tick, incremental.size(), baseline.size());
      return 1;
    }
    total += incremental.size();
  }
  std::printf("  %d ticks, %zu users, %zu subscriptions: %llu events, "
              "incremental == re-query at every tick\n",
              kTicks, kUsers, subs.size(),
              static_cast<unsigned long long>(total));
  std::printf("  engine matched %llu candidate users vs %llu the re-query "
              "path would rescan\n",
              static_cast<unsigned long long>(engine.counters().delta_users),
              static_cast<unsigned long long>(kUsers) * kTicks);
  return 0;
}

}  // namespace

int main() {
  core::Cluster::Options opt;
  opt.node.mode = core::GridMode::kDualPeer;
  opt.seed = 7;
  core::Cluster cluster(opt);
  for (int i = 0; i < 40; ++i) cluster.spawn();
  cluster.run_until_joined();
  cluster.run_for(20.0);
  std::size_t regions = 0;
  for (const auto& node : cluster.nodes()) {
    for (const auto& [rid, region] : node->owned()) {
      if (region.is_primary()) ++regions;
    }
  }
  std::printf("grid up: %zu nodes, %zu regions\n", cluster.nodes().size(),
              regions);

  // Alice's phone talks to one grid node; Bob's and Carol's to others.
  auto& alice = *cluster.nodes()[0];
  auto& bobs_proxy = *cluster.nodes()[1];
  auto& carols_proxy = *cluster.nodes()[2];
  const UserId bob{1}, carol{2};

  alice.on_notify = [](const net::Notify& n) {
    std::printf("  [alice] notify: %s entered the campus (sub %llu)\n",
                n.payload.c_str(),
                static_cast<unsigned long long>(n.sub_id));
  };
  alice.on_locate = [](const net::LocateReply& r) {
    if (r.found) {
      std::printf("  [alice] user %u is at (%.1f, %.1f), %u hops away\n",
                  r.user.value, r.location.x, r.location.y, r.hops);
    } else {
      std::printf("  [alice] user %u is nowhere on the grid\n", r.user.value);
    }
  };

  // 1. Presence subscription over the campus: a 4x4-mile rectangle.
  const Rect campus{20.0, 20.0, 4.0, 4.0};
  alice.subscribe(campus, std::string(core::kPresenceTopic), 3600.0);
  cluster.run_for(5.0);
  std::printf("alice subscribed to presence over campus "
              "[%.0f,%.0f]x[%.0f,%.0f]\n",
              campus.x, campus.x + campus.width, campus.y,
              campus.y + campus.height);

  // 2. Bob drives toward campus, reporting as he goes.
  std::printf("bob drives onto campus:\n");
  const Point highway{50.0, 50.0}, gate{22.0, 22.0};
  bobs_proxy.submit_location_update(bob, highway, 1);
  cluster.run_for(5.0);
  bobs_proxy.submit_location_update(bob, gate, 2, highway);
  cluster.run_for(5.0);

  // 3. Wandering inside the campus is suppressed — no notification spam.
  std::printf("bob wanders around campus (no duplicate notifies):\n");
  bobs_proxy.submit_location_update(bob, Point{23.0, 21.5}, 3, gate);
  cluster.run_for(5.0);

  // 4. Carol is downtown; Alice asks the grid where she is.
  const Point downtown{30.0, 12.0};
  carols_proxy.submit_location_update(carol, downtown, 1);
  cluster.run_for(5.0);
  std::printf("alice locates carol:\n");
  alice.locate_user(carol, downtown);
  cluster.run_for(5.0);

  // 5. The campus region's primary crashes; the dual-peer replica serves.
  core::GeoGridNode* owner = cluster.primary_covering(gate);
  if (owner != nullptr && owner != &alice) {
    std::printf("campus owner (node %u) crashes...\n", owner->info().id.value);
    owner->crash();
    cluster.run_for(60.0);
    core::GeoGridNode* seeker = alive_node(cluster, owner);
    if (seeker != nullptr) {
      seeker->on_locate = [](const net::LocateReply& r) {
        std::printf("  [after crash] user %u %s at (%.1f, %.1f)\n",
                    r.user.value, r.found ? "still found" : "LOST",
                    r.location.x, r.location.y);
      };
      seeker->locate_user(bob, gate);
      cluster.run_for(10.0);
    }
  }

  std::uint64_t ingested = 0, notifies = 0, handoffs = 0;
  for (const auto& node : cluster.nodes()) {
    ingested += node->counters().location_updates_ingested;
    notifies += node->counters().presence_notifies_sent;
    handoffs += node->counters().user_handoffs;
  }
  std::printf("\ntotals: %llu updates ingested, %llu presence notifies, "
              "%llu handoffs\n",
              static_cast<unsigned long long>(ingested),
              static_cast<unsigned long long>(notifies),
              static_cast<unsigned long long>(handoffs));

  // 6. The same tracking, without polling: standing subscriptions drained
  //    incrementally, checked against a re-query-per-tick reference.
  return run_engine_tracking();
}
