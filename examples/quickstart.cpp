// Quickstart: stand up a small GeoGrid, issue a location query, and watch
// the answer come back.
//
//   $ ./example_quickstart
//
// Walks through the public API end to end: a protocol-mode cluster (real
// message exchanges over the simulated network), a spatial query routed by
// greedy geographic forwarding, and the result arriving at the focal node.
#include <cstdio>

#include "core/cluster.h"

using namespace geogrid;

int main() {
  // A GeoGrid deployment over a 64 x 64 mile metropolitan area, with the
  // dual-peer technique enabled (every region gains a backup owner).
  core::Cluster::Options options;
  options.node.mode = core::GridMode::kDualPeer;
  options.seed = 2007;
  core::Cluster cluster(options);

  // Bring up 30 proxy nodes at random positions with Gnutella-style skewed
  // capacities.  Joins are real protocol runs: bootstrap -> routed join
  // request -> probe -> seat grant.
  std::printf("spinning up 30 proxy nodes...\n");
  for (int i = 0; i < 30; ++i) cluster.spawn();
  cluster.run_until_joined();
  cluster.run_for(10.0);  // let neighbor gossip settle
  std::printf("all joined after %.1f virtual seconds\n",
              cluster.loop().now());

  // Show who owns what.
  std::size_t regions = 0;
  for (const auto& node : cluster.nodes()) {
    for (const auto& [rid, region] : node->owned()) {
      if (region.is_primary()) ++regions;
    }
  }
  std::printf("%zu regions cover the plane (dual peer halves the count)\n",
              regions);

  // Issue the paper's example request: "Inform me of the traffic around
  // Exit 89 on I-85" — a rectangular query area around a point of
  // interest, tagged with a filter condition.
  auto& commuter = *cluster.nodes().front();
  commuter.on_result = [](const net::QueryResult& r) {
    std::printf("  result from region %u: %s\n", r.from_region.value,
                r.payload.c_str());
  };
  const Rect exit_89{41.0, 27.0, 4.0, 4.0};
  std::printf("querying traffic around (43, 29)...\n");
  commuter.submit_query(exit_89, "traffic");
  cluster.run_for(5.0);

  // The same area as a standing subscription plus a publication.
  commuter.on_notify = [](const net::Notify& n) {
    std::printf("  notification [%s]: %s\n", n.topic.c_str(),
                n.payload.c_str());
  };
  commuter.subscribe(exit_89, "traffic", /*duration=*/1800.0);
  cluster.run_for(5.0);
  cluster.nodes()[5]->publish({43.0, 29.0}, "traffic",
                              "accident cleared, lanes open");
  cluster.run_for(5.0);

  const auto& stats = cluster.network().stats();
  std::printf("network: %llu messages, %llu bytes on the wire\n",
              static_cast<unsigned long long>(stats.messages_sent),
              static_cast<unsigned long long>(stats.bytes_sent));
  return 0;
}
