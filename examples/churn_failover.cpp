// Churn and fail-over: the dual-peer safety story.
//
// Proxies are end-user machines: they crash without warning and leave
// without ceremony.  This example runs a protocol-mode GeoGrid through a
// crash of a primary owner (its secondary takes over from the replica), a
// graceful departure (seats handed over), and continuous queries proving
// the location service stays available throughout.
#include <cstdio>

#include "core/cluster.h"

using namespace geogrid;

int main() {
  core::Cluster::Options options;
  options.node.mode = core::GridMode::kDualPeer;
  options.seed = 404;
  core::Cluster cluster(options);

  std::printf("deploying 35 proxies...\n");
  for (int i = 0; i < 35; ++i) cluster.spawn();
  cluster.run_until_joined();
  cluster.run_for(15.0);

  // A subscriber watches the downtown area; its subscription is
  // replicated to the covering region's secondary owner.
  auto& watcher = *cluster.nodes().front();
  int notifications = 0;
  watcher.on_notify = [&](const net::Notify& n) {
    ++notifications;
    std::printf("  watcher <- %s\n", n.payload.c_str());
  };
  const Rect downtown{30.0, 30.0, 6.0, 6.0};
  watcher.subscribe(downtown, "incidents", 100000.0);
  cluster.run_for(15.0);  // replication happens on sync ticks

  // Crash the primary owner of downtown.
  core::GeoGridNode* primary = cluster.primary_covering({33, 33});
  if (primary == nullptr) {
    std::printf("unexpected: no unique downtown owner\n");
    return 1;
  }
  std::printf("crashing downtown's primary owner (node %u)...\n",
              primary->info().id.value);
  primary->crash();
  cluster.bootstrap().unregister(primary->info().id);

  // Fail-over: heartbeats stop, the secondary declares the primary dead,
  // activates the replica, and announces the takeover.
  cluster.run_for(60.0);
  core::GeoGridNode* successor = cluster.primary_covering({33, 33});
  if (successor != nullptr) {
    std::printf("fail-over complete: node %u now serves downtown "
                "(%llu takeovers in the grid)\n",
                successor->info().id.value,
                static_cast<unsigned long long>(
                    successor->counters().takeovers));
  }

  // The replicated subscription still matches publications.
  cluster.nodes()[20]->publish({33.0, 33.0}, "incidents",
                               "water main break on Peachtree");
  cluster.run_for(10.0);
  std::printf("notifications delivered after fail-over: %d\n",
              notifications);

  // A graceful departure next: seats are handed over, not recovered.
  auto& leaver = *cluster.nodes()[12];
  std::printf("node %u leaves gracefully...\n", leaver.info().id.value);
  leaver.leave();
  cluster.bootstrap().unregister(leaver.info().id);
  cluster.run_for(30.0);

  // Service check: queries across the plane still come back.
  int results = 0;
  watcher.on_result = [&](const net::QueryResult&) { ++results; };
  for (double x = 8.0; x < 64.0; x += 16.0) {
    for (double y = 8.0; y < 64.0; y += 16.0) {
      watcher.submit_query(Rect{x - 1, y - 1, 2, 2}, "incidents");
    }
  }
  cluster.run_for(15.0);
  std::printf("post-churn query sweep: %d answers across 16 queries\n",
              results);

  // Structural soundness of the surviving overlay.
  const auto errors = cluster.check_consistency();
  std::printf("consistency violations: %zu\n", errors.size());
  for (const auto& e : errors) std::printf("  %s\n", e.c_str());
  return errors.empty() && results >= 14 ? 0 : 1;
}
