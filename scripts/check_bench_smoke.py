#!/usr/bin/env python3
"""CI bench-smoke gate for the mobile-user ingestion hot path.

Compares a fresh bench_location_updates JSON report against the committed
baseline (BENCH_location_updates.json) at one population and fails when
serial ingestion throughput regressed by more than the allowed fraction.
CI runners are noisy, so the gate is deliberately loose (30%): it exists
to catch order-of-magnitude regressions (an accidental O(n) partition
walk per update, a lock on the hot path), not 5% jitter.

Usage: check_bench_smoke.py <fresh.json> <baseline.json> [--users N]
       [--max-drop FRAC]
"""

import argparse
import json
import sys


def point_for(report, users):
    for point in report["points"]:
        if point["users"] == users:
            return point
    raise SystemExit(
        f"no {users}-user point in report (have "
        f"{[p['users'] for p in report['points']]})")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--users", type=int, default=10_000)
    parser.add_argument("--max-drop", type=float, default=0.30)
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh = point_for(json.load(f), args.users)
    with open(args.baseline) as f:
        base = point_for(json.load(f), args.users)

    checks = ["updates_per_sec"]
    # Older baselines predate the sharded engine; compare its keys only
    # when both sides have them.
    for key in ("updates_per_sec_k1", "updates_per_sec_sharded"):
        if key in fresh and key in base:
            checks.append(key)

    failed = False
    for key in checks:
        got, want = fresh[key], base[key]
        floor = want * (1.0 - args.max_drop)
        verdict = "OK" if got >= floor else "REGRESSION"
        print(f"{key:>24}: {got:>12,.0f} vs baseline {want:>12,.0f} "
              f"(floor {floor:,.0f}) {verdict}")
        failed |= got < floor

    if failed:
        print(f"FAIL: throughput at {args.users} users dropped more than "
              f"{args.max_drop:.0%} below the committed baseline")
        return 1
    print("bench smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
