#!/usr/bin/env python3
"""CI bench-smoke gate for the mobile-user hot paths.

Compares a fresh bench JSON report against its committed baseline
(BENCH_location_updates.json, BENCH_queries.json) at one population and
fails when any shared throughput series regressed by more than the
allowed fraction.  Every key containing "per_sec" that appears in both
the fresh point and the baseline point is gated, so the script works
unchanged for the ingestion bench (updates_per_sec*) and the query bench
(queries_per_sec*), and new series join the gate by simply being emitted.
CI runners are noisy, so the gate is deliberately loose (30%): it exists
to catch order-of-magnitude regressions (an accidental O(n) partition
walk per update, a lock on the hot path, a region scan sneaking back
into the batched read path), not 5% jitter.

Keys present on only one side are normally skipped so baselines can be
refreshed lazily; pass --require KEY (repeatable) for series that must
exist on both sides — a bench silently dropping its headline series
should fail the gate, not sail through it.

--scaling additionally gates multi-core scaling from the fresh report's
thread_curve: the T-thread entry (default T=8) divided by the 1-thread
entry must reach max(0.5, 0.375 * min(T, host_cores)).  On a machine
with 8+ cores that demands a 3x speedup at 8 threads; on a smaller CI
runner the requirement shrinks to what the host could physically
deliver, and the 0.5 floor still catches a parallel path that collapses
under oversubscription (a convoying lock, a serializing barrier).  The
bench must emit "host_cores" and per-point "thread_curve" for the gate
to run — their absence is a failure, not a skip.

--ratio FLOOR gates how gracefully a series scales with population: the
headline series at the large population (default 1M users) divided by
the same series at the small population (--users) must reach FLOOR.  A
flat-per-user hot path keeps per-second throughput roughly constant as
the population grows; pointer-chasing per candidate shows up as decay.
The ratio is always computed within a single report — the fresh one
when it carries both points (full local runs), else the committed
baseline (CI smoke runs only re-measure the small point) — never
across reports, so run-to-run noise cannot split the numerator and
denominator.

Usage: check_bench_smoke.py <fresh.json> <baseline.json> [--users N]
       [--max-drop FRAC] [--require KEY]... [--scaling]
       [--scaling-threads T] [--ratio FLOOR] [--ratio-users N]
       [--ratio-key KEY]
"""

import argparse
import json
import sys


def point_for(report, users):
    for point in report["points"]:
        if point["users"] == users:
            return point
    raise SystemExit(
        f"no {users}-user point in report (have "
        f"{[p['users'] for p in report['points']]})")


def curve_entry(curve, threads):
    for entry in curve:
        if entry.get("threads") == threads:
            return entry
    raise SystemExit(
        f"no {threads}-thread entry in thread_curve (have "
        f"{[e.get('threads') for e in curve]})")


def curve_throughput(entry):
    values = [v for k, v in entry.items() if "per_sec" in k]
    if len(values) != 1:
        raise SystemExit(
            f"expected exactly one *per_sec series per curve entry, got "
            f"{sorted(k for k in entry if 'per_sec' in k)}")
    return values[0]


def check_scaling(report, point, threads):
    """Gate the thread curve against what the host could deliver.

    Required speedup is 0.375 * min(threads, host_cores): 3.0x at 8
    threads on an 8+-core host, proportionally less on smaller runners.
    The 0.5 floor applies even on a 1-core host — oversubscribed workers
    may not help there, but a parallel path that runs at less than half
    the serial speed is convoying on a lock or barrier, which is exactly
    what this gate exists to catch.
    """
    if "host_cores" not in report:
        raise SystemExit("--scaling needs \"host_cores\" in the fresh report")
    if "thread_curve" not in point:
        raise SystemExit("--scaling needs \"thread_curve\" in the fresh point")
    host_cores = report["host_cores"]
    curve = point["thread_curve"]
    base = curve_throughput(curve_entry(curve, 1))
    high = curve_throughput(curve_entry(curve, threads))
    if base <= 0:
        raise SystemExit("1-thread curve entry has non-positive throughput")
    speedup = high / base
    required = max(0.5, 0.375 * min(threads, host_cores))
    verdict = "OK" if speedup >= required else "REGRESSION"
    print(f"{'scaling':>26}: {speedup:>11.2f}x at {threads} threads "
          f"(required {required:.2f}x, host cores {host_cores}) {verdict}")
    return speedup >= required


def check_ratio(fresh_report, base_report, small_users, large_users, key,
                floor):
    """Gate large-over-small population scaling of one throughput series."""
    for name, report in (("fresh", fresh_report), ("baseline", base_report)):
        pops = [p["users"] for p in report["points"]]
        if small_users not in pops or large_users not in pops:
            continue
        small = point_for(report, small_users)
        large = point_for(report, large_users)
        if key not in small or key not in large:
            raise SystemExit(
                f"--ratio needs \"{key}\" at both populations in the "
                f"{name} report")
        if small[key] <= 0:
            raise SystemExit(
                f"{key} at {small_users:,} users is non-positive")
        ratio = large[key] / small[key]
        verdict = "OK" if ratio >= floor else "REGRESSION"
        print(f"{'population ratio':>26}: {ratio:>11.2f} = "
              f"{key}@{large_users:,} / @{small_users:,} users "
              f"from {name} report (floor {floor:.2f}) {verdict}")
        return ratio >= floor
    raise SystemExit(
        f"--ratio needs both the {small_users:,}- and {large_users:,}-user "
        f"points in the fresh or baseline report")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--users", type=int, default=10_000)
    parser.add_argument("--max-drop", type=float, default=0.30)
    parser.add_argument("--require", action="append", default=[],
                        metavar="KEY",
                        help="series that must be present in both reports")
    parser.add_argument("--scaling", action="store_true",
                        help="gate thread_curve scaling vs host_cores")
    parser.add_argument("--scaling-threads", type=int, default=8,
                        help="thread count judged against the 1-thread entry")
    parser.add_argument("--ratio", type=float, default=None, metavar="FLOOR",
                        help="minimum large-over-small population throughput "
                             "ratio")
    parser.add_argument("--ratio-users", type=int, default=1_000_000,
                        help="large population for the --ratio gate")
    parser.add_argument("--ratio-key", default="notifications_per_sec",
                        help="series gated by --ratio")
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh_report = json.load(f)
    fresh = point_for(fresh_report, args.users)
    with open(args.baseline) as f:
        base_report = json.load(f)
    base = point_for(base_report, args.users)

    # Gate every throughput series both reports know about.  Keys present
    # on only one side (an older baseline, a just-added series) are
    # skipped rather than failed so baselines can be refreshed lazily.
    checks = sorted(k for k in fresh
                    if "per_sec" in k and k in base
                    and not isinstance(fresh[k], list))
    if not checks:
        raise SystemExit("no shared *per_sec keys between fresh and baseline")
    missing = [k for k in args.require if k not in fresh or k not in base]
    if missing:
        raise SystemExit(
            f"required series missing from fresh or baseline: {missing}")

    failed = False
    for key in checks:
        got, want = fresh[key], base[key]
        floor = want * (1.0 - args.max_drop)
        verdict = "OK" if got >= floor else "REGRESSION"
        print(f"{key:>26}: {got:>12,.0f} vs baseline {want:>12,.0f} "
              f"(floor {floor:,.0f}) {verdict}")
        failed |= got < floor

    if args.scaling:
        failed |= not check_scaling(fresh_report, fresh, args.scaling_threads)

    if args.ratio is not None:
        failed |= not check_ratio(fresh_report, base_report, args.users,
                                  args.ratio_users, args.ratio_key,
                                  args.ratio)

    if failed:
        print(f"FAIL: throughput at {args.users} users dropped more than "
              f"{args.max_drop:.0%} below the committed baseline")
        return 1
    print("bench smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
