#!/usr/bin/env python3
"""CI bench-smoke gate for the mobile-user hot paths.

Compares a fresh bench JSON report against its committed baseline
(BENCH_location_updates.json, BENCH_queries.json) at one population and
fails when any shared throughput series regressed by more than the
allowed fraction.  Every key containing "per_sec" that appears in both
the fresh point and the baseline point is gated, so the script works
unchanged for the ingestion bench (updates_per_sec*) and the query bench
(queries_per_sec*), and new series join the gate by simply being emitted.
CI runners are noisy, so the gate is deliberately loose (30%): it exists
to catch order-of-magnitude regressions (an accidental O(n) partition
walk per update, a lock on the hot path, a region scan sneaking back
into the batched read path), not 5% jitter.

Keys present on only one side are normally skipped so baselines can be
refreshed lazily; pass --require KEY (repeatable) for series that must
exist on both sides — a bench silently dropping its headline series
should fail the gate, not sail through it.

Usage: check_bench_smoke.py <fresh.json> <baseline.json> [--users N]
       [--max-drop FRAC] [--require KEY]...
"""

import argparse
import json
import sys


def point_for(report, users):
    for point in report["points"]:
        if point["users"] == users:
            return point
    raise SystemExit(
        f"no {users}-user point in report (have "
        f"{[p['users'] for p in report['points']]})")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--users", type=int, default=10_000)
    parser.add_argument("--max-drop", type=float, default=0.30)
    parser.add_argument("--require", action="append", default=[],
                        metavar="KEY",
                        help="series that must be present in both reports")
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh = point_for(json.load(f), args.users)
    with open(args.baseline) as f:
        base = point_for(json.load(f), args.users)

    # Gate every throughput series both reports know about.  Keys present
    # on only one side (an older baseline, a just-added series) are
    # skipped rather than failed so baselines can be refreshed lazily.
    checks = sorted(k for k in fresh
                    if "per_sec" in k and k in base)
    if not checks:
        raise SystemExit("no shared *per_sec keys between fresh and baseline")
    missing = [k for k in args.require if k not in fresh or k not in base]
    if missing:
        raise SystemExit(
            f"required series missing from fresh or baseline: {missing}")

    failed = False
    for key in checks:
        got, want = fresh[key], base[key]
        floor = want * (1.0 - args.max_drop)
        verdict = "OK" if got >= floor else "REGRESSION"
        print(f"{key:>26}: {got:>12,.0f} vs baseline {want:>12,.0f} "
              f"(floor {floor:,.0f}) {verdict}")
        failed |= got < floor

    if failed:
        print(f"FAIL: throughput at {args.users} users dropped more than "
              f"{args.max_drop:.0%} below the committed baseline")
        return 1
    print("bench smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
